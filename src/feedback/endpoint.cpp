#include "feedback/endpoint.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

namespace infopipe::fb {

namespace {

/// Current value of a probeable component: the sensor classes the toolkit
/// ships plus the adaptive pump (so a loop can read another loop's plant).
double probe(Component* c) {
  if (auto* rs = dynamic_cast<RateSensor*>(c)) return rs->rate_hz();
  if (auto* ls = dynamic_cast<LatencySensor*>(c)) return ls->latency_ms();
  if (auto* ap = dynamic_cast<AdaptivePump*>(c)) return ap->rate_hz();
  throw CompositionError("'" + c->name() +
                         "' is not a probeable sensor "
                         "(RateSensor/LatencySensor/AdaptivePump)");
}

Buffer* need_buffer(Component* c) {
  auto* b = dynamic_cast<Buffer*>(c);
  if (b == nullptr) {
    throw CompositionError("'" + c->name() + "' is not a buffer");
  }
  return b;
}

[[noreturn]] void unknown(const std::string& target) {
  throw CompositionError("feedback endpoint '" + target +
                         "' matches no component or channel");
}

/// Turns a cumulative event count into a smoothed events-per-second reading,
/// differenced over the home runtime's clock between samples. First sample
/// primes the window and reads 0.
FeedbackLoop::Reading windowed_rate(std::function<std::uint64_t()> count,
                                    rt::Runtime* home) {
  struct State {
    std::uint64_t n = 0;
    rt::Time t = 0;
    double rate = 0.0;
    bool primed = false;
  };
  auto st = std::make_shared<State>();
  return [count = std::move(count), home, st]() {
    const std::uint64_t n = count();
    const rt::Time now = home->now();
    if (st->primed && now > st->t) {
      st->rate = static_cast<double>(n - st->n) * 1e9 /
                 static_cast<double>(now - st->t);
    }
    st->n = n;
    st->t = now;
    st->primed = true;
    return st->rate;
  };
}

/// Samples a component by name through the migration-safe path: the sample
/// runs on whichever shard hosts the component NOW, and when a structural
/// operation (a migration, a snapshot) is in flight the previous value is
/// returned instead of blocking behind it. Exactly one such cross-shard
/// sample is in flight at a time (the structural lock serializes them),
/// which is what makes opposite-direction component loops between one shard
/// pair deadlock-free.
std::function<double()> sampled(shard::ShardedRealization* sr,
                                std::string name,
                                std::function<double(Component&)> fn) {
  auto last = std::make_shared<double>(0.0);
  return [sr, name = std::move(name), fn = std::move(fn), last]() {
    if (const std::optional<double> v = sr->try_sample_component(name, fn)) {
      *last = *v;
    }
    return *last;
  };
}

/// The shard-side cache of a remote probe (satellite of §13): instead of a
/// blocking round trip per loop step, a PeriodicTask on the probed
/// component's shard samples it locally, stores the value here, and
/// broadcasts it as a kEventSensorReport. The loop's Reading is then one
/// atomic load. After a migration moves the component, the task keeps
/// sampling through the migration-safe path (it re-resolves the owner), so
/// the cache stays fresh — at worst one period stale.
class RemoteProbe {
 public:
  RemoteProbe(shard::ShardedRealization& sr, std::string name, int owner,
              rt::Time period)
      : sr_(&sr), owner_(owner) {
    const auto make = [this, name = std::move(name), period]() {
      task_ = std::make_unique<PeriodicTask>(
          sr_->group().runtime(owner_), "fb.probe." + name, period,
          [sr = sr_, name, this](rt::Time) {
            const std::optional<double> v = sr->try_sample_component(
                name, [](Component& c) { return probe(&c); });
            if (!v) return;
            value_.store(*v, std::memory_order_release);
            valid_.store(true, std::memory_order_release);
            sr->post_event(Event{kEventSensorReport, SensorReport{name, *v}});
          });
      task_->start();
    };
    run_on_owner(make);
  }

  ~RemoteProbe() {
    // Destroy the task where it lives. Must not run on a shard's kernel
    // thread — the same rule as destroying the owning FeedbackLoop.
    run_on_owner([this]() { task_.reset(); });
  }

  RemoteProbe(const RemoteProbe&) = delete;
  RemoteProbe& operator=(const RemoteProbe&) = delete;

  [[nodiscard]] double read() const {
    return valid_.load(std::memory_order_acquire)
               ? value_.load(std::memory_order_acquire)
               : 0.0;
  }

 private:
  void run_on_owner(const std::function<void()>& fn) {
    if (sr_->group().running()) {
      sr_->group().run_on(owner_, fn);
    } else {
      fn();
    }
  }

  shard::ShardedRealization* sr_;
  int owner_;  ///< shard whose runtime hosts the task (fixed at bind time)
  std::unique_ptr<PeriodicTask> task_;
  std::atomic<double> value_{0.0};
  std::atomic<bool> valid_{false};
};

FeedbackLoop::Actuate event_actuator(std::function<void(const Event&)> post,
                                     ActuatorKind kind) {
  return [post = std::move(post), kind](double v) {
    if (kind == ActuatorKind::kPumpRate && v <= 0.0) return;
    post(Event{kEventQualityHint, v});
  };
}

}  // namespace

FeedbackLoop::Reading resolve_reading(Realization& real, const SensorRef& s) {
  Component* c = real.find_component(s.target);
  if (c == nullptr) unknown(s.target);
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      Buffer* b = need_buffer(c);
      return [b]() {
        return static_cast<double>(b->fill()) /
               static_cast<double>(b->capacity());
      };
    }
    case SensorKind::kProducerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().put_blocks; },
                           &real.runtime());
    }
    case SensorKind::kConsumerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().take_blocks; },
                           &real.runtime());
    }
    case SensorKind::kProbeValue:
      (void)probe(c);  // type-check at bind time, not first sample
      return [c]() { return probe(c); };
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(Realization& real,
                                      const ActuatorRef& a) {
  Component* c = real.find_component(a.target);
  if (c == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(c) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  Realization* r = &real;
  return event_actuator(
      [r, c](const Event& e) { r->post_event_to(*c, e); }, a.kind);
}

FeedbackLoop::Reading resolve_reading(shard::ShardedRealization& sr,
                                      const SensorRef& s, int home_shard,
                                      rt::Time probe_period) {
  rt::Runtime* home = &sr.group().runtime(home_shard);
  // A channel carries the name of the buffer it replaced, so the same
  // SensorRef works before and after a cut lands on its target.
  if (shard::ShardChannel* ch = sr.find_channel(s.target)) {
    switch (s.kind) {
      case SensorKind::kFillFraction:
        return [ch]() {
          return static_cast<double>(ch->depth()) /
                 static_cast<double>(ch->capacity());
        };
      case SensorKind::kProducerStallRate:
        return windowed_rate([ch]() { return ch->producer_stalls(); }, home);
      case SensorKind::kConsumerStallRate:
        return windowed_rate([ch]() { return ch->consumer_stalls(); }, home);
      case SensorKind::kProbeValue:
        throw CompositionError("channel '" + s.target +
                               "' has no probe value; use fill_fraction or "
                               "a stall rate");
    }
  }
  const shard::ShardedRealization::Located loc = sr.find_component(s.target);
  if (loc.comp == nullptr) unknown(s.target);
  shard::ShardedRealization* srp = &sr;
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      (void)need_buffer(loc.comp);  // type-check at bind time
      return sampled(srp, s.target, [](Component& c) {
        Buffer* b = need_buffer(&c);
        return static_cast<double>(b->fill()) /
               static_cast<double>(b->capacity());
      });
    }
    case SensorKind::kProducerStallRate:
    case SensorKind::kConsumerStallRate: {
      (void)need_buffer(loc.comp);
      const bool producer = s.kind == SensorKind::kProducerStallRate;
      // The count reading tolerates a skipped sample (last value repeats,
      // the rate window just stretches over the gap).
      std::function<double()> count =
          sampled(srp, s.target, [producer](Component& c) {
            const Buffer::Stats& st = need_buffer(&c)->stats();
            return static_cast<double>(producer ? st.put_blocks
                                                : st.take_blocks);
          });
      return windowed_rate(
          [count = std::move(count)]() {
            return static_cast<std::uint64_t>(count());
          },
          home);
    }
    case SensorKind::kProbeValue: {
      (void)probe(loc.comp);  // type-check at bind time
      if (loc.shard == home_shard) {
        // Local probe: the migration-safe path degenerates to a direct read
        // when the component is on the calling shard.
        return sampled(srp, s.target,
                       [](Component& c) { return probe(&c); });
      }
      // Foreign probe: no blocking round trip per step — a shard-side task
      // pushes samples into a cache the Reading loads.
      if (probe_period <= 0) probe_period = rt::milliseconds(25);
      auto remote = std::make_shared<RemoteProbe>(sr, s.target, loc.shard,
                                                  probe_period);
      return [remote]() { return remote->read(); };
    }
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(shard::ShardedRealization& sr,
                                      const ActuatorRef& a) {
  const shard::ShardedRealization::Located loc = sr.find_component(a.target);
  if (loc.comp == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(loc.comp) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  // The hint crosses shards as a control event through the one thread-safe
  // runtime entry point: delivered at the target's dispatch points, even
  // while the target is blocked in a push/pull (§3.2 across cores). Routed
  // through the sharded realization — NOT a cached per-shard Realization —
  // so the hint keeps finding the component after migrations move it.
  shard::ShardedRealization* srp = &sr;
  Component* c = loc.comp;
  return event_actuator(
      [srp, c](const Event& e) { srp->post_event_to_component(*c, e); },
      a.kind);
}

std::unique_ptr<FeedbackLoop> make_loop(Realization& real, LoopSpec spec) {
  return std::make_unique<FeedbackLoop>(
      real.runtime(), std::move(spec.name), spec.period,
      resolve_reading(real, spec.sensor), spec.setpoint, spec.controller,
      resolve_actuate(real, spec.actuator));
}

std::unique_ptr<FeedbackLoop> make_loop(shard::ShardedRealization& sr,
                                        LoopSpec spec, int home_shard) {
  int home = home_shard;
  if (home < 0) {
    if (shard::ShardChannel* ch = sr.find_channel(spec.sensor.target)) {
      home = ch->to_shard();
    } else {
      const auto loc = sr.find_component(spec.sensor.target);
      if (loc.comp == nullptr) unknown(spec.sensor.target);
      home = loc.shard;
    }
  }
  FeedbackLoop::Reading read =
      resolve_reading(sr, spec.sensor, home, spec.period);
  FeedbackLoop::Actuate act = resolve_actuate(sr, spec.actuator);
  shard::ShardGroup* grp = &sr.group();
  FeedbackLoop::Exec exec = [grp, home](const std::function<void()>& f) {
    if (grp->running()) {
      grp->run_on(home, f);
    } else {
      f();
    }
  };
  // Construct ON the home shard: the loop's task thread spawns there and
  // its metric handles resolve against that shard's registry (rows appear
  // as shard<home>.fb.loop.<name>.* in the group snapshot).
  std::unique_ptr<FeedbackLoop> loop;
  exec([&] {
    loop = std::make_unique<FeedbackLoop>(
        grp->runtime(home), std::move(spec.name), spec.period,
        std::move(read), spec.setpoint, spec.controller, std::move(act),
        exec);
  });
  return loop;
}

}  // namespace infopipe::fb
