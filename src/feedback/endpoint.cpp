#include "feedback/endpoint.hpp"

#include <cstdint>
#include <functional>

namespace infopipe::fb {

namespace {

/// Current value of a probeable component: the sensor classes the toolkit
/// ships plus the adaptive pump (so a loop can read another loop's plant).
double probe(Component* c) {
  if (auto* rs = dynamic_cast<RateSensor*>(c)) return rs->rate_hz();
  if (auto* ls = dynamic_cast<LatencySensor*>(c)) return ls->latency_ms();
  if (auto* ap = dynamic_cast<AdaptivePump*>(c)) return ap->rate_hz();
  throw CompositionError("'" + c->name() +
                         "' is not a probeable sensor "
                         "(RateSensor/LatencySensor/AdaptivePump)");
}

Buffer* need_buffer(Component* c) {
  auto* b = dynamic_cast<Buffer*>(c);
  if (b == nullptr) {
    throw CompositionError("'" + c->name() + "' is not a buffer");
  }
  return b;
}

[[noreturn]] void unknown(const std::string& target) {
  throw CompositionError("feedback endpoint '" + target +
                         "' matches no component or channel");
}

/// Turns a cumulative event count into a smoothed events-per-second reading,
/// differenced over the home runtime's clock between samples. First sample
/// primes the window and reads 0.
FeedbackLoop::Reading windowed_rate(std::function<std::uint64_t()> count,
                                    rt::Runtime* home) {
  struct State {
    std::uint64_t n = 0;
    rt::Time t = 0;
    double rate = 0.0;
    bool primed = false;
  };
  auto st = std::make_shared<State>();
  return [count = std::move(count), home, st]() {
    const std::uint64_t n = count();
    const rt::Time now = home->now();
    if (st->primed && now > st->t) {
      st->rate = static_cast<double>(n - st->n) * 1e9 /
                 static_cast<double>(now - st->t);
    }
    st->n = n;
    st->t = now;
    st->primed = true;
    return st->rate;
  };
}

/// Runs `sample` on the owning shard while the group has kernel threads;
/// when parked or manual the direct call is race-free.
template <typename T>
std::function<T()> on_owner(shard::ShardGroup* grp, int owner,
                            std::function<T()> sample) {
  return [grp, owner, sample = std::move(sample)]() {
    if (grp->running()) return grp->call_on(owner, sample);
    return sample();
  };
}

FeedbackLoop::Actuate event_actuator(std::function<void(const Event&)> post,
                                     ActuatorKind kind) {
  return [post = std::move(post), kind](double v) {
    if (kind == ActuatorKind::kPumpRate && v <= 0.0) return;
    post(Event{kEventQualityHint, v});
  };
}

}  // namespace

FeedbackLoop::Reading resolve_reading(Realization& real, const SensorRef& s) {
  Component* c = real.find_component(s.target);
  if (c == nullptr) unknown(s.target);
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      Buffer* b = need_buffer(c);
      return [b]() {
        return static_cast<double>(b->fill()) /
               static_cast<double>(b->capacity());
      };
    }
    case SensorKind::kProducerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().put_blocks; },
                           &real.runtime());
    }
    case SensorKind::kConsumerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().take_blocks; },
                           &real.runtime());
    }
    case SensorKind::kProbeValue:
      (void)probe(c);  // type-check at bind time, not first sample
      return [c]() { return probe(c); };
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(Realization& real,
                                      const ActuatorRef& a) {
  Component* c = real.find_component(a.target);
  if (c == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(c) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  Realization* r = &real;
  return event_actuator(
      [r, c](const Event& e) { r->post_event_to(*c, e); }, a.kind);
}

FeedbackLoop::Reading resolve_reading(shard::ShardedRealization& sr,
                                      const SensorRef& s, int home_shard) {
  rt::Runtime* home = &sr.group().runtime(home_shard);
  // A channel carries the name of the buffer it replaced, so the same
  // SensorRef works before and after a cut lands on its target.
  if (shard::ShardChannel* ch = sr.find_channel(s.target)) {
    switch (s.kind) {
      case SensorKind::kFillFraction:
        return [ch]() {
          return static_cast<double>(ch->depth()) /
                 static_cast<double>(ch->capacity());
        };
      case SensorKind::kProducerStallRate:
        return windowed_rate([ch]() { return ch->producer_stalls(); }, home);
      case SensorKind::kConsumerStallRate:
        return windowed_rate([ch]() { return ch->consumer_stalls(); }, home);
      case SensorKind::kProbeValue:
        throw CompositionError("channel '" + s.target +
                               "' has no probe value; use fill_fraction or "
                               "a stall rate");
    }
  }
  const shard::ShardedRealization::Located loc = sr.find_component(s.target);
  if (loc.comp == nullptr) unknown(s.target);
  shard::ShardGroup* grp = &sr.group();
  const bool local = loc.shard == home_shard;
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      Buffer* b = need_buffer(loc.comp);
      std::function<double()> sample = [b]() {
        return static_cast<double>(b->fill()) /
               static_cast<double>(b->capacity());
      };
      return local ? FeedbackLoop::Reading(std::move(sample))
                   : FeedbackLoop::Reading(
                         on_owner(grp, loc.shard, std::move(sample)));
    }
    case SensorKind::kProducerStallRate:
    case SensorKind::kConsumerStallRate: {
      Buffer* b = need_buffer(loc.comp);
      const bool producer = s.kind == SensorKind::kProducerStallRate;
      std::function<std::uint64_t()> count = [b, producer]() {
        const Buffer::Stats& st = b->stats();
        return producer ? st.put_blocks : st.take_blocks;
      };
      if (!local) count = on_owner(grp, loc.shard, std::move(count));
      return windowed_rate(std::move(count), home);
    }
    case SensorKind::kProbeValue: {
      (void)probe(loc.comp);  // type-check at bind time
      Component* c = loc.comp;
      std::function<double()> sample = [c]() { return probe(c); };
      return local ? FeedbackLoop::Reading(std::move(sample))
                   : FeedbackLoop::Reading(
                         on_owner(grp, loc.shard, std::move(sample)));
    }
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(shard::ShardedRealization& sr,
                                      const ActuatorRef& a) {
  const shard::ShardedRealization::Located loc = sr.find_component(a.target);
  if (loc.comp == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(loc.comp) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  // The hint crosses shards as a control event through the one thread-safe
  // runtime entry point: delivered at the target's dispatch points, even
  // while the target is blocked in a push/pull (§3.2 across cores).
  Realization* r = loc.real;
  Component* c = loc.comp;
  return event_actuator(
      [r, c](const Event& e) { r->post_event_to_external(*c, e); }, a.kind);
}

std::unique_ptr<FeedbackLoop> make_loop(Realization& real, LoopSpec spec) {
  return std::make_unique<FeedbackLoop>(
      real.runtime(), std::move(spec.name), spec.period,
      resolve_reading(real, spec.sensor), spec.setpoint, spec.controller,
      resolve_actuate(real, spec.actuator));
}

std::unique_ptr<FeedbackLoop> make_loop(shard::ShardedRealization& sr,
                                        LoopSpec spec, int home_shard) {
  int home = home_shard;
  if (home < 0) {
    if (shard::ShardChannel* ch = sr.find_channel(spec.sensor.target)) {
      home = ch->to_shard();
    } else {
      const auto loc = sr.find_component(spec.sensor.target);
      if (loc.comp == nullptr) unknown(spec.sensor.target);
      home = loc.shard;
    }
  }
  FeedbackLoop::Reading read = resolve_reading(sr, spec.sensor, home);
  FeedbackLoop::Actuate act = resolve_actuate(sr, spec.actuator);
  shard::ShardGroup* grp = &sr.group();
  FeedbackLoop::Exec exec = [grp, home](const std::function<void()>& f) {
    if (grp->running()) {
      grp->run_on(home, f);
    } else {
      f();
    }
  };
  // Construct ON the home shard: the loop's task thread spawns there and
  // its metric handles resolve against that shard's registry (rows appear
  // as shard<home>.fb.loop.<name>.* in the group snapshot).
  std::unique_ptr<FeedbackLoop> loop;
  exec([&] {
    loop = std::make_unique<FeedbackLoop>(
        grp->runtime(home), std::move(spec.name), spec.period,
        std::move(read), spec.setpoint, spec.controller, std::move(act),
        exec);
  });
  return loop;
}

}  // namespace infopipe::fb
