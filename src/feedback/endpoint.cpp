#include "feedback/endpoint.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

namespace infopipe::fb {

namespace {

/// Current value of a probeable component: the sensor classes the toolkit
/// ships plus the adaptive pump (so a loop can read another loop's plant).
double probe(Component* c) {
  if (auto* rs = dynamic_cast<RateSensor*>(c)) return rs->rate_hz();
  if (auto* ls = dynamic_cast<LatencySensor*>(c)) return ls->latency_ms();
  if (auto* ap = dynamic_cast<AdaptivePump*>(c)) return ap->rate_hz();
  throw CompositionError("'" + c->name() +
                         "' is not a probeable sensor "
                         "(RateSensor/LatencySensor/AdaptivePump)");
}

Buffer* need_buffer(Component* c) {
  auto* b = dynamic_cast<Buffer*>(c);
  if (b == nullptr) {
    throw CompositionError("'" + c->name() + "' is not a buffer");
  }
  return b;
}

[[noreturn]] void unknown(const std::string& target) {
  throw CompositionError("feedback endpoint '" + target +
                         "' matches no component or channel");
}

/// Turns a cumulative event count into a smoothed events-per-second reading,
/// differenced over the home runtime's clock between samples. The counter's
/// SOURCE can change between samples (a cut channel collapsing into its
/// buffer, or a fresh channel after a later split): `count` returns an
/// opaque source tag alongside the value, and a tag change — or a counter
/// that went backwards — re-primes the window (that sample repeats the last
/// rate) instead of differencing incompatible counters. First sample primes
/// the window and reads 0.
FeedbackLoop::Reading windowed_rate_over(
    std::function<std::pair<const void*, std::uint64_t>()> count,
    rt::Runtime* home) {
  struct State {
    const void* src = nullptr;
    std::uint64_t n = 0;
    rt::Time t = 0;
    double rate = 0.0;
    bool primed = false;
  };
  auto st = std::make_shared<State>();
  return [count = std::move(count), home, st]() {
    const std::pair<const void*, std::uint64_t> s = count();
    const rt::Time now = home->now();
    if (st->primed && s.first == st->src && s.second >= st->n &&
        now > st->t) {
      st->rate = static_cast<double>(s.second - st->n) * 1e9 /
                 static_cast<double>(now - st->t);
    }
    st->src = s.first;
    st->n = s.second;
    st->t = now;
    st->primed = true;
    return st->rate;
  };
}

FeedbackLoop::Reading windowed_rate(std::function<std::uint64_t()> count,
                                    rt::Runtime* home) {
  return windowed_rate_over(
      [count = std::move(count)]() {
        return std::pair<const void*, std::uint64_t>{nullptr, count()};
      },
      home);
}

/// Samples a component by name through the migration-safe path: the sample
/// runs on whichever shard hosts the component NOW, and when a structural
/// operation (a migration, a snapshot) is in flight the previous value is
/// returned instead of blocking behind it. Exactly one such cross-shard
/// sample is in flight at a time (the structural lock serializes them),
/// which is what makes opposite-direction component loops between one shard
/// pair deadlock-free.
std::function<double()> sampled(shard::ShardedRealization* sr,
                                std::string name,
                                std::function<double(Component&)> fn) {
  auto last = std::make_shared<double>(0.0);
  return [sr, name = std::move(name), fn = std::move(fn), last]() {
    if (const std::optional<double> v = sr->try_sample_component(name, fn)) {
      *last = *v;
    }
    return *last;
  };
}

/// The shard-side cache of a remote probe (satellite of §13): instead of a
/// blocking round trip per loop step, a PeriodicTask on the probed
/// component's shard samples it locally, stores the value here, and
/// broadcasts it as a kEventSensorReport. The loop's Reading is then one
/// atomic load. The task FOLLOWS the component: when a migration moves it
/// to another shard, the tick notices (migrations() epoch change), stops
/// sampling — a tick on the old shard would otherwise be exactly the
/// blocking cross-shard round trip this cache exists to remove — and the
/// next read() re-homes the task onto the new owner shard.
class RemoteProbe {
 public:
  RemoteProbe(shard::ShardedRealization& sr, std::string name, int owner,
              rt::Time period)
      : sr_(&sr),
        name_(std::move(name)),
        period_(period),
        owner_(owner),
        epoch_(sr.migrations()) {
    run_on_owner([this] { make_task(); });
  }

  ~RemoteProbe() {
    // Destroy the task where it lives. Must not run on a shard's kernel
    // thread — the same rule as destroying the owning FeedbackLoop.
    run_on_owner([this]() { task_.reset(); });
  }

  RemoteProbe(const RemoteProbe&) = delete;
  RemoteProbe& operator=(const RemoteProbe&) = delete;

  /// One atomic load — plus, when the probed component migrated since the
  /// last read, a one-time re-home of the sampling task (the task cannot
  /// destroy itself from its own tick). read() only ever runs from the
  /// loop's step on its home shard, so the re-home is single-threaded; the
  /// old-task teardown and new-task spawn each synchronize through run_on.
  [[nodiscard]] double read() {
    const int to = moved_to_.load(std::memory_order_acquire);
    if (to >= 0 && to != owner_) {
      run_on_owner([this] { task_.reset(); });
      owner_ = to;
      moved_to_.store(-1, std::memory_order_release);
      run_on_owner([this] { make_task(); });
    }
    return valid_.load(std::memory_order_acquire)
               ? value_.load(std::memory_order_acquire)
               : 0.0;
  }

 private:
  /// Runs on owner_'s kernel thread. Each tick first re-resolves the
  /// component when a migration completed since the last look; once it has
  /// left this shard, the tick flags the new owner and goes dormant until
  /// read() re-homes the task.
  void make_task() {
    task_ = std::make_unique<PeriodicTask>(
        sr_->group().runtime(owner_), "fb.probe." + name_, period_,
        [this](rt::Time) {
          if (moved_to_.load(std::memory_order_relaxed) >= 0) return;
          const std::uint64_t ep = sr_->migrations();
          if (ep != epoch_) {
            epoch_ = ep;
            const shard::ShardedRealization::Located loc =
                sr_->find_component(name_);
            if (loc.shard >= 0 && loc.shard != owner_) {
              moved_to_.store(loc.shard, std::memory_order_release);
              return;
            }
          }
          const std::optional<double> v = sr_->try_sample_component(
              name_, [](Component& c) { return probe(&c); });
          if (!v) return;
          value_.store(*v, std::memory_order_release);
          valid_.store(true, std::memory_order_release);
          sr_->post_event(
              Event{kEventSensorReport, SensorReport{name_, *v}});
        });
    task_->start();
  }

  void run_on_owner(const std::function<void()>& fn) {
    // Inline when the group is not running — and when already ON the
    // owner's kernel thread, where a nested run_on would deadlock (a
    // re-home can land the task on the loop's own home shard).
    if (sr_->group().running() && !sr_->group().on_shard_thread(owner_)) {
      sr_->group().run_on(owner_, fn);
    } else {
      fn();
    }
  }

  shard::ShardedRealization* sr_;
  const std::string name_;
  const rt::Time period_;
  int owner_;           ///< shard whose runtime currently hosts the task
  std::uint64_t epoch_; ///< last migrations() seen; touched by the task only
  std::unique_ptr<PeriodicTask> task_;
  std::atomic<int> moved_to_{-1};  ///< task -> read(): component moved here
  std::atomic<double> value_{0.0};
  std::atomic<bool> valid_{false};
};

FeedbackLoop::Actuate event_actuator(std::function<void(const Event&)> post,
                                     ActuatorKind kind) {
  return [post = std::move(post), kind](double v) {
    if (kind == ActuatorKind::kPumpRate && v <= 0.0) return;
    post(Event{kEventQualityHint, v});
  };
}

}  // namespace

FeedbackLoop::Reading resolve_reading(Realization& real, const SensorRef& s) {
  Component* c = real.find_component(s.target);
  if (c == nullptr) unknown(s.target);
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      Buffer* b = need_buffer(c);
      return [b]() {
        return static_cast<double>(b->fill()) /
               static_cast<double>(b->capacity());
      };
    }
    case SensorKind::kProducerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().put_blocks; },
                           &real.runtime());
    }
    case SensorKind::kConsumerStallRate: {
      Buffer* b = need_buffer(c);
      return windowed_rate([b]() { return b->stats().take_blocks; },
                           &real.runtime());
    }
    case SensorKind::kProbeValue:
      (void)probe(c);  // type-check at bind time, not first sample
      return [c]() { return probe(c); };
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(Realization& real,
                                      const ActuatorRef& a) {
  Component* c = real.find_component(a.target);
  if (c == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(c) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  Realization* r = &real;
  return event_actuator(
      [r, c](const Event& e) { r->post_event_to(*c, e); }, a.kind);
}

FeedbackLoop::Reading resolve_reading(shard::ShardedRealization& sr,
                                      const SensorRef& s, int home_shard,
                                      rt::Time probe_period) {
  rt::Runtime* home = &sr.group().runtime(home_shard);
  shard::ShardedRealization* srp = &sr;
  // A channel carries the name of the buffer it replaced, so the same
  // SensorRef works before and after a cut lands on its target — and the
  // congestion kinds re-resolve the name on EVERY read, so the sensor keeps
  // tracking as migrations restructure the flow: the live channel's ring
  // atomics while the cut exists, the underlying buffer (through the
  // migration-safe sampler) after a collapse folds it away, and the fresh
  // channel object if a later move re-creates the cut.
  const bool was_cut = sr.find_channel(s.target) != nullptr;
  const shard::ShardedRealization::Located loc = sr.find_component(s.target);
  if (!was_cut && loc.comp == nullptr) unknown(s.target);
  switch (s.kind) {
    case SensorKind::kFillFraction: {
      if (!was_cut) (void)need_buffer(loc.comp);  // type-check at bind time
      std::function<double()> fallback =
          sampled(srp, s.target, [](Component& c) {
            Buffer* b = need_buffer(&c);
            return static_cast<double>(b->fill()) /
                   static_cast<double>(b->capacity());
          });
      return [srp, name = s.target, fallback = std::move(fallback)]() {
        if (shard::ShardChannel* ch = srp->find_live_channel(name)) {
          return static_cast<double>(ch->depth()) /
                 static_cast<double>(ch->capacity());
        }
        return fallback();
      };
    }
    case SensorKind::kProducerStallRate:
    case SensorKind::kConsumerStallRate: {
      if (!was_cut) (void)need_buffer(loc.comp);
      const bool producer = s.kind == SensorKind::kProducerStallRate;
      // The buffer-side count tolerates a skipped sample (last value
      // repeats, the rate window just stretches over the gap). The channel
      // pointer doubles as the window's source tag: a collapse or re-split
      // re-primes instead of differencing unrelated counters.
      std::function<double()> fallback =
          sampled(srp, s.target, [producer](Component& c) {
            const Buffer::Stats& st = need_buffer(&c)->stats();
            return static_cast<double>(producer ? st.put_blocks
                                                : st.take_blocks);
          });
      return windowed_rate_over(
          [srp, name = s.target, producer,
           fallback = std::move(fallback)]() {
            if (shard::ShardChannel* ch = srp->find_live_channel(name)) {
              return std::pair<const void*, std::uint64_t>{
                  ch, producer ? ch->producer_stalls()
                               : ch->consumer_stalls()};
            }
            return std::pair<const void*, std::uint64_t>{
                nullptr, static_cast<std::uint64_t>(fallback())};
          },
          home);
    }
    case SensorKind::kProbeValue: {
      if (loc.comp == nullptr) {
        throw CompositionError("channel '" + s.target +
                               "' has no probe value; use fill_fraction or "
                               "a stall rate");
      }
      (void)probe(loc.comp);  // type-check at bind time
      if (loc.shard == home_shard) {
        // Local probe: the migration-safe path degenerates to a direct read
        // when the component is on the calling shard.
        return sampled(srp, s.target,
                       [](Component& c) { return probe(&c); });
      }
      // Foreign probe: no blocking round trip per step — a shard-side task
      // pushes samples into a cache the Reading loads.
      if (probe_period <= 0) probe_period = rt::milliseconds(25);
      auto remote = std::make_shared<RemoteProbe>(sr, s.target, loc.shard,
                                                  probe_period);
      return [remote]() { return remote->read(); };
    }
  }
  unknown(s.target);
}

FeedbackLoop::Actuate resolve_actuate(shard::ShardedRealization& sr,
                                      const ActuatorRef& a) {
  const shard::ShardedRealization::Located loc = sr.find_component(a.target);
  if (loc.comp == nullptr) unknown(a.target);
  if (a.kind == ActuatorKind::kPumpRate &&
      dynamic_cast<AdaptivePump*>(loc.comp) == nullptr) {
    throw CompositionError("'" + a.target + "' is not an AdaptivePump");
  }
  // The hint crosses shards as a control event through the one thread-safe
  // runtime entry point: delivered at the target's dispatch points, even
  // while the target is blocked in a push/pull (§3.2 across cores). Routed
  // through the sharded realization — NOT a cached per-shard Realization —
  // so the hint keeps finding the component after migrations move it.
  shard::ShardedRealization* srp = &sr;
  Component* c = loc.comp;
  return event_actuator(
      [srp, c](const Event& e) { srp->post_event_to_component(*c, e); },
      a.kind);
}

std::unique_ptr<FeedbackLoop> make_loop(Realization& real, LoopSpec spec) {
  return std::make_unique<FeedbackLoop>(
      real.runtime(), std::move(spec.name), spec.period,
      resolve_reading(real, spec.sensor), spec.setpoint, spec.controller,
      resolve_actuate(real, spec.actuator));
}

namespace {

/// The Exec that reaches `home`'s kernel thread from anywhere — including
/// from that very thread (re-homing runs loop plumbing from shard ticks,
/// where a nested run_on would deadlock).
FeedbackLoop::Exec exec_for(shard::ShardGroup* grp, int home) {
  return [grp, home](const std::function<void()>& f) {
    if (grp->running() && !grp->on_shard_thread(home)) {
      grp->run_on(home, f);
    } else {
      f();
    }
  };
}

}  // namespace

std::unique_ptr<FeedbackLoop> make_loop(shard::ShardedRealization& sr,
                                        LoopSpec spec, int home_shard) {
  int home = home_shard;
  if (home < 0) {
    if (shard::ShardChannel* ch = sr.find_channel(spec.sensor.target)) {
      home = ch->to_shard();
    } else {
      const auto loc = sr.find_component(spec.sensor.target);
      if (loc.comp == nullptr) unknown(spec.sensor.target);
      home = loc.shard;
    }
  }
  FeedbackLoop::Reading read =
      resolve_reading(sr, spec.sensor, home, spec.period);
  FeedbackLoop::Actuate act = resolve_actuate(sr, spec.actuator);
  shard::ShardGroup* grp = &sr.group();
  FeedbackLoop::Exec exec = exec_for(grp, home);
  // Construct ON the home shard: the loop's task thread spawns there and
  // its metric handles resolve against that shard's registry (rows appear
  // as shard<home>.fb.loop.<name>.* in the group snapshot).
  std::unique_ptr<FeedbackLoop> loop;
  exec([&] {
    loop = std::make_unique<FeedbackLoop>(
        grp->runtime(home), std::move(spec.name), spec.period,
        std::move(read), spec.setpoint, spec.controller, std::move(act),
        exec);
  });
  // A naturally-homed loop FOLLOWS its sensor: when a migration moves the
  // observed section, the next step notices (one relaxed epoch load per
  // step otherwise), recomputes the natural home and — if it changed —
  // hands the loop a Rebind with the endpoints re-resolved for the new
  // vantage point. An explicit home_shard pins the loop: the caller chose a
  // placement, so no check is installed.
  if (home_shard < 0) {
    shard::ShardedRealization* srp = &sr;
    loop->set_home_check(
        [srp, grp, sensor = spec.sensor, actuator = spec.actuator,
         period = spec.period, home, epoch = sr.migrations()]() mutable
        -> std::optional<FeedbackLoop::Rebind> {
          const std::uint64_t ep = srp->migrations();
          if (ep == epoch) return std::nullopt;
          epoch = ep;
          int nh = -1;
          if (shard::ShardChannel* ch =
                  srp->find_live_channel(sensor.target)) {
            nh = ch->to_shard();
          } else {
            nh = srp->find_component(sensor.target).shard;
          }
          if (nh < 0 || nh == home) return std::nullopt;
          home = nh;
          FeedbackLoop::Rebind rb;
          rb.rt = &grp->runtime(nh);
          rb.read = resolve_reading(*srp, sensor, nh, period);
          rb.act = resolve_actuate(*srp, actuator);
          rb.exec = exec_for(grp, nh);
          return rb;
        });
  }
  return loop;
}

}  // namespace infopipe::fb
