// Location-transparent feedback endpoints (ip_feedback).
//
// The Figure 1 loop — a consumer-side sensor steering a producer-side
// component through the platform — must not care WHERE its two ends run.
// A SensorRef/ActuatorRef names an endpoint (a component or a cross-shard
// channel, by the name the application gave it); resolving the ref against
// a realization produces the concrete Reading/Actuate function:
//
//   * against a Realization, refs resolve to direct probes and local
//     control events — everything is on one runtime;
//   * against a shard::ShardedRealization, congestion sensors (fill and
//     stall kinds) re-resolve their name on every read: the live cross-shard
//     channel's ring atomics while the cut exists, the underlying buffer
//     (through the migration-safe sampler) after the rebalancer collapses
//     the cut, and the fresh channel object if a later migration re-creates
//     it — the rate window re-primes across each such switch; component
//     sensors go through ShardedRealization::try_sample_component, which
//     samples on whichever shard hosts the component NOW — so a reading
//     keeps working after the rebalancer migrates its target, and never
//     blocks behind a structural operation (it repeats the last value
//     instead); actuations travel as
//     kEventQualityHint control events through
//     ShardedRealization::post_event_to_component — the same
//     deliver-while-blocked event service that carries them within one
//     runtime, now hopping kernel threads and surviving migrations.
//
// Foreign probe values (a RateSensor on another shard, say) are not sampled
// by round trip at all: resolution plants a small PeriodicTask on the
// probed component's shard that samples locally, pushes the value into an
// atomic cache and broadcasts it as kEventSensorReport; the loop's Reading
// is then one atomic load, at worst one probe period stale. The task
// follows its component: after a migration moves it, the task goes dormant
// and the next Reading re-homes it onto the new owner shard.
//
// make_loop() binds a whole loop from a LoopSpec: on a sharded realization
// the loop is homed on a shard (by default the sensor channel's consumer
// shard — congestion is observed where it hurts) and its lifecycle is
// routed there via run_on, so the caller never touches a foreign runtime.
//
// Cross-shard component samples are serialized by the realization's
// structural lock (one in flight at a time, others reuse their last value),
// so two component-sampling loops closed in opposite directions between the
// same pair of shards no longer deadlock. Channel sensors (pure atomics)
// remain the cheapest way to observe a cut.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "feedback/toolkit.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::fb {

/// What a named sensor endpoint measures.
enum class SensorKind {
  kFillFraction,       ///< buffer fill / channel depth, as fraction of capacity
  kProducerStallRate,  ///< producer-side blocks (put_blocks) per second
  kConsumerStallRate,  ///< consumer-side blocks (take_blocks) per second
  kProbeValue,  ///< RateSensor rate_hz / LatencySensor latency_ms / pump rate
};

/// A sensor endpoint by name: a component or channel in some realization.
/// Pure value — resolution happens against a realization.
struct SensorRef {
  std::string target;
  SensorKind kind = SensorKind::kFillFraction;
};

/// What a named actuator endpoint does with the loop output.
enum class ActuatorKind {
  kPumpRate,     ///< kEventQualityHint(Hz) to an AdaptivePump; <= 0 dropped
  kQualityHint,  ///< kEventQualityHint(double) to any component, unfiltered
};

/// An actuator endpoint by name. Pure value, like SensorRef.
struct ActuatorRef {
  std::string target;
  ActuatorKind kind = ActuatorKind::kPumpRate;
};

// -- named-endpoint factories ---------------------------------------------------

/// Fill level of the buffer (or depth of the cross-shard channel) named
/// `target`, as a fraction of capacity.
[[nodiscard]] inline SensorRef fill_fraction(std::string target) {
  return SensorRef{std::move(target), SensorKind::kFillFraction};
}
/// Producer-side stall rate (blocks/s) of the buffer or channel `target`.
[[nodiscard]] inline SensorRef producer_stall_rate(std::string target) {
  return SensorRef{std::move(target), SensorKind::kProducerStallRate};
}
/// Consumer-side stall rate (blocks/s) of the buffer or channel `target`.
[[nodiscard]] inline SensorRef consumer_stall_rate(std::string target) {
  return SensorRef{std::move(target), SensorKind::kConsumerStallRate};
}
/// Current value of the sensor component `target` (RateSensor/LatencySensor)
/// or the current rate of the AdaptivePump `target`.
[[nodiscard]] inline SensorRef probe_value(std::string target) {
  return SensorRef{std::move(target), SensorKind::kProbeValue};
}
/// Rate actuation of the AdaptivePump named `target` (kEventQualityHint).
[[nodiscard]] inline ActuatorRef pump_rate(std::string target) {
  return ActuatorRef{std::move(target), ActuatorKind::kPumpRate};
}
/// Raw kEventQualityHint(double) to any component named `target`.
[[nodiscard]] inline ActuatorRef quality_hint(std::string target) {
  return ActuatorRef{std::move(target), ActuatorKind::kQualityHint};
}

// -- resolution -----------------------------------------------------------------

/// Resolve against a single-runtime realization: direct probes and local
/// control events. Throws CompositionError if the name is unknown or the
/// component's type does not fit the kind.
[[nodiscard]] FeedbackLoop::Reading resolve_reading(Realization& real,
                                                    const SensorRef& s);
[[nodiscard]] FeedbackLoop::Actuate resolve_actuate(Realization& real,
                                                    const ActuatorRef& a);

/// Resolve against a sharded realization for a loop homed on `home_shard`:
/// congestion refs re-resolve their name per read (live channel atomics,
/// else the underlying buffer via the migration-safe sampler), component
/// refs sample through try_sample_component, and foreign probe values are
/// served from a shard-side cache refreshed every `probe_period` (<= 0
/// picks a 25ms default; make_loop passes the loop period).
[[nodiscard]] FeedbackLoop::Reading resolve_reading(
    shard::ShardedRealization& sr, const SensorRef& s, int home_shard,
    rt::Time probe_period = 0);
/// Actuations are location-transparent by construction: the event enqueues
/// onto the target's shard through the thread-safe external path.
[[nodiscard]] FeedbackLoop::Actuate resolve_actuate(
    shard::ShardedRealization& sr, const ActuatorRef& a);

// -- whole-loop binding ---------------------------------------------------------

/// Everything a feedback loop needs, with both ends as named endpoints.
struct LoopSpec {
  std::string name;
  rt::Time period = rt::milliseconds(50);
  SensorRef sensor;
  double setpoint = 0.0;
  PIController controller{0.0, 0.0, 0.0, 0.0};
  ActuatorRef actuator;
};

/// Bind a loop on a single runtime.
[[nodiscard]] std::unique_ptr<FeedbackLoop> make_loop(Realization& real,
                                                      LoopSpec spec);

/// Bind a loop on a sharded realization. `home_shard` < 0 picks the natural
/// home: the sensor channel's consumer shard (where congestion is observed),
/// else the sensor component's shard. The loop's task runs on that shard's
/// runtime; construction, start/stop and destruction are routed there, so
/// this is safe to call from any kernel thread while the group runs.
[[nodiscard]] std::unique_ptr<FeedbackLoop> make_loop(
    shard::ShardedRealization& sr, LoopSpec spec, int home_shard = -1);

}  // namespace infopipe::fb
