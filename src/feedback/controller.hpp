// Feedback controllers (§2.1's "feedback toolkit for adaptation control",
// after Goel et al., "Adaptive resource management via modular feedback
// control" — the paper's reference [7]).
//
// Pure arithmetic, no middleware dependencies: a controller maps an error
// signal to an actuation value at discrete sample times. Composition with
// sensors and actuators happens in toolkit.hpp.
#pragma once

#include <algorithm>

namespace infopipe::fb {

/// First-order low-pass filter (EWMA) for smoothing noisy sensor readings.
class LowPassFilter {
 public:
  /// alpha in (0,1]: weight of the newest sample; 1 = no smoothing.
  explicit LowPassFilter(double alpha) : alpha_(alpha) {}

  double update(double sample) {
    if (!primed_) {
      value_ = sample;
      primed_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  void reset() noexcept { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Proportional controller with output clamping.
class PController {
 public:
  PController(double kp, double out_min, double out_max)
      : kp_(kp), out_min_(out_min), out_max_(out_max) {}

  /// error = setpoint - measurement; returns the clamped actuation delta.
  [[nodiscard]] double update(double error) const {
    return std::clamp(kp_ * error, out_min_, out_max_);
  }

 private:
  double kp_;
  double out_min_;
  double out_max_;
};

/// Proportional-integral controller with anti-windup (the integrator is
/// clamped to the output range).
class PIController {
 public:
  PIController(double kp, double ki, double out_min, double out_max)
      : kp_(kp), ki_(ki), out_min_(out_min), out_max_(out_max) {}

  double update(double error, double dt_seconds) {
    integral_ += error * dt_seconds;
    // Anti-windup: keep the integral term within the achievable output.
    // Gains may be negative (e.g. a drain pump: more rate -> less fill), so
    // order the bounds explicitly.
    if (ki_ != 0.0) {
      const double b1 = out_min_ / ki_;
      const double b2 = out_max_ / ki_;
      integral_ = std::clamp(integral_, std::min(b1, b2), std::max(b1, b2));
    }
    return std::clamp(kp_ * error + ki_ * integral_, out_min_, out_max_);
  }

  void reset() noexcept { integral_ = 0.0; }
  [[nodiscard]] double integral() const noexcept { return integral_; }

 private:
  double kp_;
  double ki_;
  double out_min_;
  double out_max_;
  double integral_ = 0.0;
};

}  // namespace infopipe::fb
