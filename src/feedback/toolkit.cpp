#include "feedback/toolkit.hpp"

namespace infopipe::fb {

namespace {
constexpr int kMsgLoopTick = 200;
}

PeriodicTask::PeriodicTask(rt::Runtime& rt, std::string name, rt::Time period,
                           std::function<void(rt::Time)> body,
                           rt::Priority priority)
    : rt_(&rt), period_(period), body_(std::move(body)) {
  tid_ = rt_->spawn(std::move(name), priority,
                    [this](rt::Runtime& r, rt::Message m) -> rt::CodeResult {
                      if (m.type != kMsgLoopTick) return rt::CodeResult::kContinue;
                      while (!stop_requested_) {
                        r.sleep_for(period_);
                        if (stop_requested_) break;
                        body_(r.now());
                      }
                      active_ = false;
                      return rt::CodeResult::kContinue;
                    });
}

PeriodicTask::~PeriodicTask() {
  if (rt_->alive(tid_)) rt_->kill(tid_);
}

void PeriodicTask::start() {
  if (active_) return;
  stop_requested_ = false;
  active_ = true;
  rt_->send(tid_, rt::Message{kMsgLoopTick, rt::MsgClass::kData});
}

void PeriodicTask::stop() { stop_requested_ = true; }

FeedbackLoop::Actuate pump_rate_actuator(Realization& real,
                                         AdaptivePump& pump) {
  Realization* r = &real;
  AdaptivePump* p = &pump;
  return [r, p](double rate_hz) {
    if (rate_hz > 0.0) r->post_event_to(*p, Event{kEventQualityHint, rate_hz});
  };
}

}  // namespace infopipe::fb
