#include "feedback/toolkit.hpp"

namespace infopipe::fb {

namespace {
constexpr int kMsgLoopTick = 200;
}

PeriodicTask::PeriodicTask(rt::Runtime& rt, std::string name, rt::Time period,
                           std::function<void(rt::Time)> body,
                           rt::Priority priority)
    : rt_(&rt), period_(period), body_(std::move(body)) {
  tid_ = rt_->spawn(std::move(name), priority,
                    [this](rt::Runtime& r, rt::Message m) -> rt::CodeResult {
                      if (m.type != kMsgLoopTick) return rt::CodeResult::kContinue;
                      while (!stop_requested_) {
                        r.sleep_for(period_);
                        if (stop_requested_) break;
                        body_(r.now());
                      }
                      active_ = false;
                      return rt::CodeResult::kContinue;
                    });
}

PeriodicTask::~PeriodicTask() {
  if (rt_->alive(tid_)) rt_->kill(tid_);
}

void PeriodicTask::start() {
  // Clear the stop flag FIRST: a start() racing a not-yet-noticed stop()
  // (the ticking thread only checks at its next wakeup) must simply cancel
  // the stop — sending another tick message would stack a second loop.
  stop_requested_ = false;
  if (active_) return;
  active_ = true;
  rt_->send(tid_, rt::Message{kMsgLoopTick, rt::MsgClass::kData});
}

void PeriodicTask::stop() { stop_requested_ = true; }

// ============================ FeedbackLoop ==================================

FeedbackLoop::FeedbackLoop(rt::Runtime& rt, std::string name, rt::Time period,
                           Reading read, double setpoint,
                           PIController controller, Actuate actuate, Exec exec)
    : name_(std::move(name)),
      controller_(std::move(controller)),
      read_(std::move(read)),
      actuate_(std::move(actuate)),
      setpoint_(setpoint),
      period_(period),
      exec_(std::move(exec)) {
  if (!exec_) exec_ = [](const std::function<void()>& f) { f(); };
  // Handles resolve once against the home runtime's registry; step() runs on
  // that runtime, so the plain handle updates stay single-threaded.
  const std::string p = "fb.loop." + name_;
  out_gauge_ = &rt.metrics().gauge(p + ".output");
  err_gauge_ = &rt.metrics().gauge(p + ".error");
  steps_ctr_ = &rt.metrics().counter(p + ".steps");
  act_ctr_ = &rt.metrics().counter(p + ".actuations");
  task_ = std::make_unique<PeriodicTask>(rt, name_, period,
                                         [this](rt::Time) { step(); });
}

FeedbackLoop::~FeedbackLoop() {
  exec_([this] { task_.reset(); });
}

void FeedbackLoop::start() {
  exec_([this] { task_->start(); });
}

void FeedbackLoop::stop() {
  exec_([this] { task_->stop(); });
}

void FeedbackLoop::step() {
  const double error = setpoint_.load(std::memory_order_relaxed) - read_();
  const double out =
      controller_.update(error, static_cast<double>(period_) / 1e9);
  last_err_.store(error, std::memory_order_relaxed);
  last_out_.store(out, std::memory_order_relaxed);
  err_gauge_->set(error);
  out_gauge_->set(out);
  steps_ctr_->inc();
  steps_.fetch_add(1, std::memory_order_relaxed);
  actuate_(out);
  act_ctr_->inc();
  actuations_.fetch_add(1, std::memory_order_relaxed);
}

FeedbackLoop::Actuate pump_rate_actuator(Realization& real,
                                         AdaptivePump& pump) {
  Realization* r = &real;
  AdaptivePump* p = &pump;
  return [r, p](double rate_hz) {
    if (rate_hz > 0.0) r->post_event_to(*p, Event{kEventQualityHint, rate_hz});
  };
}

}  // namespace infopipe::fb
