#include "feedback/toolkit.hpp"

#include "rt/msg_registry.hpp"

namespace infopipe::fb {

namespace {
constexpr int kMsgLoopTick = rt::msg::kFeedbackLoopTick;
}

PeriodicTask::PeriodicTask(rt::Runtime& rt, std::string name, rt::Time period,
                           std::function<void(rt::Time)> body,
                           rt::Priority priority)
    : rt_(&rt), period_(period), body_(std::move(body)) {
  tid_ = rt_->spawn(std::move(name), priority,
                    [this](rt::Runtime& r, rt::Message m) -> rt::CodeResult {
                      if (m.type != kMsgLoopTick) return rt::CodeResult::kContinue;
                      while (!stop_requested_) {
                        r.sleep_for(period_);
                        if (stop_requested_) break;
                        body_(r.now());
                      }
                      active_ = false;
                      // A retired task tears itself down: its owner flagged
                      // it from inside this very tick and cannot kill() it.
                      return retired_ ? rt::CodeResult::kTerminate
                                      : rt::CodeResult::kContinue;
                    });
}

PeriodicTask::~PeriodicTask() {
  if (rt_->alive(tid_)) rt_->kill(tid_);
}

void PeriodicTask::start() {
  // Clear the stop flag FIRST: a start() racing a not-yet-noticed stop()
  // (the ticking thread only checks at its next wakeup) must simply cancel
  // the stop — sending another tick message would stack a second loop.
  stop_requested_ = false;
  if (active_) return;
  active_ = true;
  rt_->send(tid_, rt::Message{kMsgLoopTick, rt::MsgClass::kData});
}

void PeriodicTask::stop() { stop_requested_ = true; }

void PeriodicTask::retire() {
  stop_requested_ = true;
  retired_ = true;
}

// ============================ FeedbackLoop ==================================

FeedbackLoop::FeedbackLoop(rt::Runtime& rt, std::string name, rt::Time period,
                           Reading read, double setpoint,
                           PIController controller, Actuate actuate, Exec exec)
    : name_(std::move(name)),
      controller_(std::move(controller)),
      read_(std::move(read)),
      actuate_(std::move(actuate)),
      setpoint_(setpoint),
      period_(period),
      exec_(std::move(exec)) {
  if (!exec_) exec_ = [](const std::function<void()>& f) { f(); };
  // Handles resolve once against the home runtime's registry; step() runs on
  // that runtime, so the plain handle updates stay single-threaded. (A
  // rebind re-resolves them against the new home.)
  bind_metrics(rt);
  task_ = std::make_unique<PeriodicTask>(rt, name_, period,
                                         [this](rt::Time) { step(); });
}

void FeedbackLoop::bind_metrics(rt::Runtime& rt) {
  const std::string p = "fb.loop." + name_;
  out_gauge_ = &rt.metrics().gauge(p + ".output");
  err_gauge_ = &rt.metrics().gauge(p + ".error");
  steps_ctr_ = &rt.metrics().counter(p + ".steps");
  act_ctr_ = &rt.metrics().counter(p + ".actuations");
}

FeedbackLoop::~FeedbackLoop() {
  exec_([this] { task_.reset(); });
  // Retired tasks died on shards the loop since moved away from; each is
  // destroyed back where it lived (the kill degrades to a no-op when the
  // thread already self-terminated, but a retired task caught mid-tick by a
  // fast teardown may still be winding down there).
  for (auto& [task, exec] : retired_) {
    exec([&t = task] { t.reset(); });
  }
}

void FeedbackLoop::start() {
  exec_([this] { task_->start(); });
}

void FeedbackLoop::stop() {
  exec_([this] { task_->stop(); });
}

void FeedbackLoop::apply_rebind(Rebind rb) {
  // Running inside the current task's tick, on the OLD home thread. Retire
  // the task (it self-terminates after this tick; destroying it here would
  // pull its stack out from under us) and park it until the loop dies.
  task_->retire();
  retired_.emplace_back(std::move(task_), std::move(exec_));
  read_ = std::move(rb.read);
  actuate_ = std::move(rb.act);
  exec_ = std::move(rb.exec);
  if (!exec_) exec_ = [](const std::function<void()>& f) { f(); };
  // Registry handles and the fresh task must be touched on the NEW home's
  // kernel thread; the new Exec routes there (run_on from this tick is safe:
  // the new shard's service thread is idle, we hold no locks).
  rt::Runtime* dest = rb.rt;
  exec_([this, dest] {
    bind_metrics(*dest);
    task_ = std::make_unique<PeriodicTask>(*dest, name_, period_,
                                           [this](rt::Time) { step(); });
    task_->start();
  });
  rehomes_.fetch_add(1, std::memory_order_relaxed);
}

void FeedbackLoop::step() {
  if (home_check_) {
    if (std::optional<Rebind> rb = home_check_()) {
      apply_rebind(std::move(*rb));
      return;  // next step runs on the new home, against the new reading
    }
  }
  const double error = setpoint_.load(std::memory_order_relaxed) - read_();
  const double out =
      controller_.update(error, static_cast<double>(period_) / 1e9);
  last_err_.store(error, std::memory_order_relaxed);
  last_out_.store(out, std::memory_order_relaxed);
  err_gauge_->set(error);
  out_gauge_->set(out);
  steps_ctr_->inc();
  steps_.fetch_add(1, std::memory_order_relaxed);
  actuate_(out);
  act_ctr_->inc();
  actuations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace infopipe::fb
