// Quickstart: the paper's §4 local video player, verbatim shape.
//
//   mpeg_file source("test.mpg");
//   mpeg_decoder decode;
//   clocked_pump pump(30); // 30 Hz
//   video_display sink;
//   source >> decode >> pump >> sink;
//   send_event(START);
//
// Build & run:   ./build/examples/quickstart
//
// The runtime uses a virtual clock, so ten seconds of 30 fps video play in
// milliseconds of wall time while preserving exact timing semantics.
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/paper_api.hpp"

using namespace infopipe;
using namespace infopipe::media;

int main() {
  rt::Runtime rt;  // the message-based user-level thread package

  StreamConfig cfg;
  cfg.frames = 300;  // ten seconds at 30 fps
  cfg.fps = 30.0;

  mpeg_file source("test.mpg", cfg);
  mpeg_decoder decode;
  clocked_pump pump(30);  // 30 Hz
  video_display sink;

  // Composition type-checks as it goes: the decoder requires an mpeg flow
  // and offers a raw flow, which is what the display accepts. An
  // incompatible chain would throw CompositionError right here.
  // share() hands the pipeline to the realization, which keeps it alive —
  // no dangling graph even if the Chain object goes away.
  // Realization plans the threading: this pipeline needs exactly ONE thread
  // (the pump's) — decoder and endpoints are called directly.
  Realization player(rt, (source >> decode >> pump >> sink).share());
  std::printf("planned threads: %d (coroutines: %d)\n",
              player.plan().total_threads(),
              player.plan().total_coroutines());

  // player.start() is a spelling of player.control(START) — THE lifecycle
  // entry point on every RealizationHandle (core/realization_handle.hpp).
  player.start();
  rt.run();  // returns when the stream ends and the pipeline is quiescent

  const auto stats = sink.stats();
  std::printf("displayed %llu frames (%llu I / %llu P / %llu B)\n",
              static_cast<unsigned long long>(stats.displayed),
              static_cast<unsigned long long>(stats.per_type[kKindI]),
              static_cast<unsigned long long>(stats.per_type[kKindP]),
              static_cast<unsigned long long>(stats.per_type[kKindB]));
  std::printf("mean |jitter| = %.3f ms, max = %.3f ms\n",
              stats.mean_abs_jitter_ms, stats.max_abs_jitter_ms);
  std::printf("decoder: %llu decoded, %llu corrupt, %zu refs still held\n",
              static_cast<unsigned long long>(decode.stats().decoded),
              static_cast<unsigned long long>(decode.stats().corrupt),
              decode.held_references());
  std::printf("virtual time at end: %.2f s\n",
              static_cast<double>(rt.now()) / 1e9);
  return stats.displayed == cfg.frames ? 0 : 1;
}
