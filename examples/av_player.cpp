// A/V player: audio-master synchronization across two pipelines.
//
// The paper's lineage applications (the OGI distributed MPEG player, refs
// [5, 32]) pace video against the audio device's hardware clock: "Another
// kind of pump is used on the producer node... Its speed is adjusted by a
// feedback mechanism to compensate for clock drift" (§3.1).
//
// Here the audio device's crystal runs 0.3% fast relative to nominal —
// exactly the kind of drift that desynchronizes a naive player by ~1 video
// frame every 11 seconds. The audio branch is driven by the clock-driven
// active sink; the video branch's AdaptivePump is steered by a feedback
// controller comparing video position against the audio device's broadcast
// media position. Run with --no-sync to watch the drift win.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/infopipes.hpp"
#include "feedback/toolkit.hpp"
#include "media/audio.hpp"
#include "media/mpeg.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

struct Result {
  std::uint64_t audio_chunks = 0;
  std::uint64_t underruns = 0;
  std::uint64_t video_frames = 0;
  double final_skew_ms = 0.0;  ///< |video position - audio position|
  double max_skew_ms = 0.0;
};

Result run(bool with_sync) {
  rt::Runtime rt;
  constexpr double kFps = 25.0;
  // Nominal device rate is 100 chunks/s; the crystal runs 0.3% fast.
  constexpr double kDriftedRate = 100.3;
  constexpr rt::Time kRun = rt::seconds(60);

  // --- audio branch: tone -> buffer -> audio device (the driver) -----------
  ToneSource tone("tone", 440.0, 1u << 20);
  FreeRunningPump afill("afill");
  Buffer abuf("abuf", 16, FullPolicy::kBlock, EmptyPolicy::kNil);
  AudioDevice device("device", kDriftedRate, /*position_report_every=*/10);

  // --- video branch: file -> decoder -> buffer -> adaptive pump -> display --
  StreamConfig cfg;
  cfg.frames = 1u << 20;
  cfg.fps = kFps;
  MpegFileSource movie("movie.mpg", cfg);
  MpegDecoder decoder("decoder");
  FreeRunningPump vfill("vfill");
  Buffer vbuf("vbuf", 8, FullPolicy::kBlock, EmptyPolicy::kNil);
  AdaptivePump vpump("vpump", kFps);
  VideoDisplay display("display", kFps);

  Pipeline p;
  p.connect(tone, 0, afill, 0);
  p.connect(afill, 0, abuf, 0);
  p.connect(abuf, 0, device, 0);
  p.connect(movie, 0, decoder, 0);
  p.connect(decoder, 0, vfill, 0);
  p.connect(vfill, 0, vbuf, 0);
  p.connect(vbuf, 0, vpump, 0);
  p.connect(vpump, 0, display, 0);
  Realization real(rt, p);

  // --- A/V sync: audio is the master clock ----------------------------------
  double max_skew_ms = 0.0;
  rt::Time audio_pos = 0;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventAudioPosition) {
      if (const auto* t = e.get<rt::Time>()) audio_pos = *t;
    }
  });

  fb::PeriodicTask sync(rt, "av-sync", rt::milliseconds(200), [&](rt::Time) {
    const double video_pos_ms =
        1e3 * static_cast<double>(display.stats().displayed) / kFps;
    const double audio_pos_ms = static_cast<double>(audio_pos) / 1e6;
    const double skew = video_pos_ms - audio_pos_ms;
    max_skew_ms = std::max(max_skew_ms, std::abs(skew));
    if (with_sync) {
      // Rate correction proportional to the skew: the §3.1 feedback pump.
      const double correction = -skew / 1000.0;  // s of skew -> fraction
      const double rate =
          std::clamp(kFps * (1.0 + correction), kFps * 0.9, kFps * 1.1);
      real.post_event_to(vpump, Event{kEventQualityHint, rate});
    }
  });

  real.start();
  sync.start();
  rt.run_until(kRun);
  sync.stop();

  Result r;
  r.audio_chunks = device.stats().played;
  r.underruns = device.stats().underruns;
  r.video_frames = display.stats().displayed;
  const double video_pos_ms =
      1e3 * static_cast<double>(r.video_frames) / kFps;
  r.final_skew_ms =
      std::abs(video_pos_ms - static_cast<double>(audio_pos) / 1e6);
  r.max_skew_ms = max_skew_ms;

  real.shutdown();
  rt.run();
  return r;
}

void report(const char* label, const Result& r) {
  std::printf("%s\n", label);
  std::printf("  audio: %llu chunks played, %llu underruns\n",
              static_cast<unsigned long long>(r.audio_chunks),
              static_cast<unsigned long long>(r.underruns));
  std::printf("  video: %llu frames shown\n",
              static_cast<unsigned long long>(r.video_frames));
  std::printf("  A/V skew: final %.1f ms, max %.1f ms\n\n", r.final_skew_ms,
              r.max_skew_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const bool only_nosync = argc > 1 && std::strcmp(argv[1], "--no-sync") == 0;
  if (!only_nosync) {
    report("WITH audio-master sync (feedback-adjusted video pump):",
           run(/*with_sync=*/true));
  }
  report("WITHOUT sync (fixed 25 fps video pump, drifting audio clock):",
         run(/*with_sync=*/false));
  std::puts("expected shape: without sync the skew grows unbounded (~3 ms/s");
  std::puts("of drift); with sync it stays within a frame period.");
  return 0;
}
