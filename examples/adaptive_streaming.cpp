// Adaptive streaming: the paper's Figure 1 pipeline, end to end.
//
//   source -> pump -> drop-filter -> marshal -> [netpipe] -> unmarshal
//          -> decoder -> buffer -> pump -> display
//            ^                                         |
//            +--------- feedback (control events) -----+
//
// A consumer-side sensor watches the delivered rate and steers the
// producer-side FrameDropFilter through the event service. When the
// simulated network gets congested, the filter sheds B frames (then P),
// so the frames that matter survive — "this lets us control which data is
// dropped rather than incurring arbitrary dropping in the network."
//
// The run has three phases: plenty of bandwidth, a congestion episode, and
// recovery. Compare the delivered frame mix and corruption with and without
// the feedback (--no-feedback).
#include <cstdio>
#include <cstring>

#include "core/infopipes.hpp"
#include "feedback/controller.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"
#include "media/mpeg.hpp"
#include "net/control_link.hpp"
#include "net/netpipe.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

/// Consumer-side controller: compares delivered rate to the nominal frame
/// rate and broadcasts drop levels to the producer side. A tiny domain
/// controller built from the feedback toolkit's pieces. The sensor end is
/// bound by NAME through the endpoint layer: the controller reads whatever
/// component the pipeline calls `sensor_name`, wherever it runs.
class QualityController {
 public:
  QualityController(rt::Runtime& rt, Realization& real,
                    const std::string& sensor_name, FrameDropFilter& filter,
                    double nominal_fps, const net::RemoteControlLink& uplink)
      : real_(&real),
        filter_(&filter),
        delivered_(fb::resolve_reading(real, fb::probe_value(sensor_name))),
        uplink_(&uplink),
        nominal_(nominal_fps),
        task_(rt, "quality-ctl", rt::milliseconds(250), [this](rt::Time) {
          step();
        }) {}

  void start() { task_.start(); }
  void stop() { task_.stop(); }

 private:
  void step() {
    const double delivered = delivered_();
    if (delivered <= 0.0) return;  // sensor still warming up
    if (settle_periods_ > 0) {
      // A level change takes a couple of sensor windows to show up in the
      // smoothed rate; don't react to stale readings.
      --settle_periods_;
      return;
    }
    int level = filter_->level();
    if (delivered < 0.8 * expected_rate(level) && level < 2) {
      ++level;  // losing frames at this level: shed the next frame class
      clean_periods_ = 0;
    } else if (delivered > 0.95 * expected_rate(level) && level > 0) {
      // Clean delivery: probe one quality step up, but only after a few
      // consecutive clean periods (hysteresis against thrashing).
      if (++clean_periods_ >= 4) {
        --level;
        clean_periods_ = 0;
      }
    } else {
      clean_periods_ = 0;
    }
    if (level != filter_->level()) {
      // The command crosses the network back to the producer: it arrives
      // one link latency later (§2.4's remote control delivery).
      uplink_->post(*real_, *filter_, Event{kEventDropLevel, level});
      settle_periods_ = 6;
    }
  }

  /// Frame rate that should arrive if the network passes everything the
  /// filter lets through (GOP IBBPBBPBB: 1/9 I, 2/9 P, 6/9 B).
  [[nodiscard]] double expected_rate(int level) const {
    switch (level) {
      case 0: return nominal_;
      case 1: return nominal_ * 3 / 9;
      default: return nominal_ * 1 / 9;
    }
  }

  Realization* real_;
  FrameDropFilter* filter_;
  fb::FeedbackLoop::Reading delivered_;
  const net::RemoteControlLink* uplink_;
  double nominal_;
  int clean_periods_ = 0;
  int settle_periods_ = 0;
  fb::PeriodicTask task_;
};

struct RunResult {
  VideoDisplay::Stats display;
  net::SimLink::Stats link;
  FrameDropFilter::Stats filter;
  MpegDecoder::Stats decoder;
};

RunResult run(bool with_feedback) {
  rt::Runtime rt;

  StreamConfig cfg;
  cfg.frames = 900;  // 30 seconds at 30 fps
  MpegFileSource source("movie.mpg", cfg);
  ClockedPump send_pump("send-pump", cfg.fps);
  FrameDropFilter filter("drop-filter");

  net::MarshalFilter marshal("marshal", encode_frame, "video");
  net::LinkConfig link_cfg;
  link_cfg.bandwidth_bps = 6e6;  // comfortable for the full stream
  link_cfg.base_latency = rt::milliseconds(30);
  link_cfg.jitter = rt::milliseconds(4);
  link_cfg.queue_capacity_bytes = 48 * 1024;
  net::SimLink link(link_cfg);
  net::NetSender tx("tx", link, "server");
  net::NetReceiver rx("rx", link, "client");
  net::UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");

  MpegDecoder decoder("decoder");
  fb::RateSensor sensor("delivered-rate", 0.5, rt::milliseconds(500));
  Buffer jitter_buf("jitter-buf", 8, FullPolicy::kDropOldest,
                    EmptyPolicy::kNil);
  ClockedPump play_pump("play-pump", cfg.fps);
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(source, 0, send_pump, 0);
  p.connect(send_pump, 0, filter, 0);
  p.connect(filter, 0, marshal, 0);
  p.connect(marshal, 0, tx, 0);
  p.connect(rx, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  p.connect(decoder, 0, sensor, 0);
  p.connect(sensor, 0, jitter_buf, 0);
  p.connect(jitter_buf, 0, play_pump, 0);
  p.connect(play_pump, 0, display, 0);

  Realization real(rt, p);
  net::RemoteControlLink uplink(link);  // feedback path shares the network
  QualityController controller(rt, real, "delivered-rate", filter, cfg.fps,
                               uplink);

  real.start();
  if (with_feedback) controller.start();

  rt.run_until(rt::seconds(10));
  link.set_bandwidth(0.4e6);  // congestion: only the I frames fit
  rt.run_until(rt::seconds(20));
  link.set_bandwidth(6e6);  // recovery
  rt.run_until(rt::seconds(40));

  controller.stop();
  real.shutdown();
  rt.run();
  return RunResult{display.stats(), link.stats(), filter.stats(),
                   decoder.stats()};
}

void report(const char* label, const RunResult& r) {
  std::printf("%s\n", label);
  std::printf("  displayed: %llu (I %llu / P %llu / B %llu), corrupt: %llu\n",
              static_cast<unsigned long long>(r.display.displayed),
              static_cast<unsigned long long>(r.display.per_type[kKindI]),
              static_cast<unsigned long long>(r.display.per_type[kKindP]),
              static_cast<unsigned long long>(r.display.per_type[kKindB]),
              static_cast<unsigned long long>(r.display.corrupt));
  std::printf("  network: %llu sent, %llu congestion drops\n",
              static_cast<unsigned long long>(r.link.sent),
              static_cast<unsigned long long>(r.link.dropped_congestion));
  std::printf("  filter: dropped %llu B, %llu P, %llu I (controlled)\n",
              static_cast<unsigned long long>(r.filter.dropped[kKindB]),
              static_cast<unsigned long long>(r.filter.dropped[kKindP]),
              static_cast<unsigned long long>(r.filter.dropped[kKindI]));
  std::printf("  display jitter: mean %.2f ms, max %.2f ms\n\n",
              r.display.mean_abs_jitter_ms, r.display.max_abs_jitter_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const bool only_no_fb =
      argc > 1 && std::strcmp(argv[1], "--no-feedback") == 0;

  if (!only_no_fb) {
    report("WITH feedback (sensor steers the producer-side drop filter):",
           run(/*with_feedback=*/true));
  }
  report("WITHOUT feedback (the network drops arbitrarily):",
         run(/*with_feedback=*/false));

  std::puts("Expected shape: with feedback the filter sheds B frames during");
  std::puts("congestion, almost nothing corrupts, and I/P survive; without");
  std::puts("it the link drops I frames too and corruption soars.");
  return 0;
}
