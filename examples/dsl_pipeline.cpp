// Microlanguage-driven pipeline: build and run an Infopipe from a textual
// program instead of C++ setup code (the composition microlanguage the
// paper announces as future work; src/lang/).
//
//   ./dsl_pipeline                 # runs the built-in demo program
//   ./dsl_pipeline my_pipeline.ip  # runs a program from a file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/infopipes.hpp"
#include "lang/microlang.hpp"
#include "media/mpeg.hpp"

using namespace infopipe;

namespace {

constexpr const char* kDemoProgram = R"(
# Two-stage video pipeline with a jitter buffer, written in the
# composition microlanguage.
let movie   = mpeg_file(demo.mpg, 150, 30)
let decode  = decoder()
let fill    = freerunning_pump()
let jitter  = buffer(8, block, nil)
let play    = pump(30)
let screen  = display(30)

chain movie -> decode -> fill -> jitter -> play -> screen
)";

}  // namespace

int main(int argc, char** argv) {
  std::string program = kDemoProgram;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    program = buf.str();
  }

  lang::MicroLang ml;
  lang::Assembly assembly;
  try {
    assembly = ml.parse(program);
  } catch (const lang::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("program defines %zu components\n",
              assembly.components.size());

  rt::Runtime rt;
  try {
    Realization real(rt, assembly.pipeline);
    std::printf("%s\n", real.describe().c_str());
    real.start();
    rt.run();
  } catch (const CompositionError& e) {
    std::fprintf(stderr, "composition error: %s\n", e.what());
    return 1;
  }

  // Report whatever sinks the program declared.
  for (const auto& c : assembly.components) {
    if (auto* d = dynamic_cast<media::VideoDisplay*>(c.get())) {
      const auto s = d->stats();
      std::printf("%s: %llu frames, mean |jitter| %.3f ms\n",
                  d->name().c_str(),
                  static_cast<unsigned long long>(s.displayed),
                  s.mean_abs_jitter_ms);
    } else if (auto* k = dynamic_cast<CountingSink*>(c.get())) {
      std::printf("%s: %llu items\n", k->name().c_str(),
                  static_cast<unsigned long long>(k->count()));
    }
  }
  return 0;
}
