// Distributed player: the full §2.4 story across REAL process boundaries.
//
// Run with no arguments and this binary becomes three cooperating roles:
//
//   1. A single-process reference run over SimLink computes the stream
//      digest (FNV-1a over every marshalled packet's payload bytes + seq +
//      kind — timestamps are clock-dependent and excluded).
//   2. It then fork+execs itself twice: `--server` (a Node with a camera
//      factory behind a TCP control link, plus a TCP data link) and
//      `--client` (RemoteNode creates the camera through the middleware
//      factory protocol, queries its Typespec in marshalled form across the
//      socket, negotiates the flow, then plays the stream).
//   3. The client verifies its digest against the reference: the item
//      stream that crossed loopback TCP between two OS processes must be
//      byte-identical to the one that crossed the in-process SimLink.
//
// INFOPIPE_NET=sim is the kill switch: only the single-process SimLink run
// happens, same digest, no sockets, no child processes.
//
//   distributed_player                 orchestrate sim + server + client
//   distributed_player --sim           single-process SimLink run only
//   distributed_player --server --port P [--frames N]
//   distributed_player --client --port P [--frames N] [--expect HEX]
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/binder.hpp"
#include "net/netpipe.hpp"
#include "net/node.hpp"
#include "net/remote_node.hpp"
#include "net/socket_transport.hpp"
#include "rt/io_bridge.hpp"

using namespace infopipe;
using namespace infopipe::media;
using namespace infopipe::net;

namespace {

constexpr std::uint64_t kDefaultFrames = 300;
constexpr double kPumpHz = 200.0;  ///< wall-clock pace of the real-net run

/// Server-side source type, offering a typed flow.
class Camera : public MpegFileSource {
 public:
  Camera(const std::string& name, std::uint64_t frames)
      : MpegFileSource(name, [frames] {
          StreamConfig c;
          c.frames = frames;
          return c;
        }()) {}
};

/// Client-side display with explicit requirements.
class Screen : public VideoDisplay {
 public:
  explicit Screen(const std::string& name) : VideoDisplay(name, 30.0) {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kItemType, std::string("video")},
                    {props::kFormats, StringSet{"raw"}},
                    {props::kFrameRate, Range{10, 60}}};
  }
};

/// FNV-1a 64 over the marshalled stream. Hashed per data item, in arrival
/// order: payload bytes, then seq and kind as explicit big-endian words.
/// Timestamps are deliberately NOT hashed — they differ between a SimClock
/// run and a RealClock run while the information content does not.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void update(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void update_u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 7; i >= 0; --i) {
      b[i] = static_cast<std::uint8_t>(v & 0xFF);
      v >>= 8;
    }
    update(b, sizeof b);
  }
};

/// Pass-through tap on the byte flow between the netpipe receiver and the
/// unmarshalling filter: digests exactly what crossed the link.
class DigestTap : public FunctionComponent {
 public:
  explicit DigestTap(std::string name) : FunctionComponent(std::move(name)) {}

  [[nodiscard]] std::uint64_t digest() const noexcept { return h_.h; }
  [[nodiscard]] std::uint64_t items() const noexcept { return n_; }

 protected:
  Item convert(Item x) override {
    if (const auto* v = x.payload<std::vector<std::uint8_t>>()) {
      h_.update(v->data(), v->size());
    } else if (const std::uint8_t* p = x.bytes_data()) {
      h_.update(p, x.bytes_size());
    }
    h_.update_u64(x.seq);
    h_.update_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(x.kind)));
    ++n_;
    return x;
  }

 private:
  Fnv1a h_;
  std::uint64_t n_ = 0;
};

struct StreamResult {
  std::uint64_t digest = 0;
  std::uint64_t packets = 0;
  std::uint64_t displayed = 0;
};

/// Drives a RealClock runtime in small slices until `done` or the budget
/// runs out — socket events enter through post_external between slices.
template <typename Pred>
bool drive_until(rt::Runtime& rtm, Pred done, rt::Time budget) {
  const rt::Time deadline = rtm.now() + budget;
  while (!done()) {
    if (rtm.now() >= deadline) return false;
    rtm.run_until(rtm.now() + rt::milliseconds(5));
  }
  return true;
}

std::string hex64(std::uint64_t v) {
  char b[17];
  std::snprintf(b, sizeof b, "%016" PRIx64, v);
  return b;
}

// ---- single-process reference run (SimLink, virtual time) -------------------------

StreamResult run_sim(std::uint64_t frames) {
  rt::Runtime rtm;  // SimClock: the whole stream plays in virtual time

  Node server(rtm, "video-server");
  Node client(rtm, "living-room");
  server.register_factory(
      "camera", [](const std::string& name, const std::string& args) {
        return std::make_unique<Camera>(
            name, args.empty() ? kDefaultFrames : std::stoul(args));
      });

  // Remote creation over the in-process node protocol.
  const std::string cam_name =
      remote_create(rtm, server, "camera", "cam0", std::to_string(frames));
  auto* cam = dynamic_cast<Camera*>(server.lookup(cam_name));
  client.adopt(std::make_unique<Screen>("screen"));
  auto* screen = dynamic_cast<Screen*>(client.lookup("screen"));

  // A generous, jitter-free link: the reference stream must arrive intact.
  LinkConfig lc;
  lc.bandwidth_bps = 1e9;
  lc.base_latency = rt::milliseconds(1);
  lc.jitter = rt::Time{0};
  SimLink link(lc);

  ClockedPump send_pump("send-pump", kPumpHz);
  MarshalFilter marshal("marshal", encode_frame, "video");
  NetSender tx("tx", link, server.name());
  NetReceiver rx("rx", link, client.name());
  DigestTap tap("digest");
  UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
  MpegDecoder decoder("decoder");

  Pipeline p;
  p.connect(*cam, 0, send_pump, 0);
  p.connect(send_pump, 0, marshal, 0);
  p.connect(marshal, 0, tx, 0);
  p.connect(rx, 0, tap, 0);
  p.connect(tap, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  p.connect(decoder, 0, *screen, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();

  return {tap.digest(), tap.items(), screen->stats().displayed};
}

// ---- server process ---------------------------------------------------------------

int run_server(std::uint16_t port, std::uint64_t frames) {
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io{rtm};

  // Two listening sockets: the control link carries the factory/Typespec
  // protocol, the data link carries the marshalled stream.
  SocketConfig ctl_cfg;
  ctl_cfg.port = port;
  auto ctl = SocketTransport::listen(rtm, io, ctl_cfg);
  SocketConfig data_cfg;
  data_cfg.port = static_cast<std::uint16_t>(port + 1);
  auto data = SocketTransport::listen(rtm, io, data_cfg);

  Node node(rtm, "video-server");
  node.register_factory(
      "camera", [](const std::string& name, const std::string& args) {
        return std::make_unique<Camera>(
            name, args.empty() ? kDefaultFrames : std::stoul(args));
      });
  NodeServer srv(rtm, node, *ctl);

  // START arrives on the transport's agent thread; the pipeline is built
  // from the main loop so realization happens outside the handler.
  std::string cam_name;
  srv.on_start([&](const std::string& args) {
    cam_name = args.empty() ? std::string("cam0") : args;
    return "starting " + cam_name;
  });

  std::printf("[server %d] control :%u data :%u\n", getpid(),
              ctl->local_port(), data->local_port());

  std::unique_ptr<Pipeline> p;
  std::unique_ptr<ClockedPump> pump;
  std::unique_ptr<MarshalFilter> marshal;
  std::unique_ptr<NetSender> tx;
  std::unique_ptr<Realization> real;

  const rt::Time deadline = rtm.now() + rt::seconds(30);
  bool started = false;
  while (rtm.now() < deadline) {
    rtm.run_until(rtm.now() + rt::milliseconds(5));
    if (srv.start_requested() && !started) {
      auto* cam = dynamic_cast<Camera*>(node.lookup(cam_name));
      if (cam == nullptr) {
        std::fprintf(stderr, "[server] no camera '%s' to start\n",
                     cam_name.c_str());
        return 1;
      }
      pump = std::make_unique<ClockedPump>("send-pump", kPumpHz);
      marshal = std::make_unique<MarshalFilter>("marshal", encode_frame,
                                                "video");
      tx = std::make_unique<NetSender>("tx", *data, node.name());
      p = std::make_unique<Pipeline>();
      p->connect(*cam, 0, *pump, 0);
      p->connect(*pump, 0, *marshal, 0);
      p->connect(*marshal, 0, *tx, 0);
      real = std::make_unique<Realization>(rtm, *p);
      real->start();
      started = true;
      std::printf("[server] flow started: %" PRIu64 " frames over %s\n",
                  frames, data->kind().c_str());
    }
    if (started && data->eos_flushed()) {
      std::printf("[server] stream flushed: %" PRIu64 " frames, %" PRIu64
                  " bytes\n",
                  data->stats().frames_sent, data->stats().bytes_sent);
      return 0;
    }
  }
  std::fprintf(stderr, "[server] timed out (started=%d)\n", started ? 1 : 0);
  return 2;
}

// ---- client process ---------------------------------------------------------------

int run_client(std::uint16_t port, std::uint64_t frames,
               const std::string& expect) {
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io{rtm};

  // Control link first: connect retries with backoff until the server's
  // listener appears, so start order between the processes is free.
  SocketConfig ctl_cfg;
  ctl_cfg.port = port;
  auto ctl = SocketTransport::connect(rtm, io, ctl_cfg);
  RemoteNode server(rtm, *ctl, "video-server");

  // Remote creation through the real middleware protocol: the factory call
  // travels as a control frame, the reply names the component.
  const std::string cam_name =
      server.create("camera", "cam0", std::to_string(frames));
  std::printf("[client %d] created '%s' on remote node %s\n", getpid(),
              cam_name.c_str(), server.name().c_str());

  // The local half of the player, owned by a local node so the binder can
  // query both ends the same way.
  Node local(rtm, "living-room");
  local.adopt(std::make_unique<Screen>("screen"));
  auto* screen = dynamic_cast<Screen*>(local.lookup("screen"));
  LocalNodeEndpoint local_ep(rtm, local);

  // Data link (server listens on port+1).
  SocketConfig data_cfg;
  data_cfg.port = static_cast<std::uint16_t>(port + 1);
  auto data = SocketTransport::connect(rtm, io, data_cfg);

  // Negotiation across the socket: camera->screen directly fails (mpeg vs
  // raw) — the marshalled Typespecs cross the control link either way.
  EndpointBindingRequest breq;
  breq.producer_node = &server;
  breq.producer = cam_name;
  breq.consumer_node = &local_ep;
  breq.consumer = "screen";
  breq.link = data.get();
  const BindingResult direct = negotiate(rtm, breq);
  std::printf("[client] direct binding: %s\n",
              direct.ok ? "accepted (unexpected!)" : "rejected as expected");

  // With the decoder in the path the agreement is the camera's mpeg flow.
  MpegDecoder decoder("decoder");
  Typespec cam_offer = server.output_offer(cam_name, 0);
  auto agreed = cam_offer.intersect(decoder.input_requirement(0));
  std::printf("[client] negotiated flow into the decoder: %s\n",
              agreed ? agreed->to_string().c_str() : "(failed)");
  if (!agreed) return 1;

  NetReceiver rx("rx", *data, server.name());
  DigestTap tap("digest");
  UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");
  Pipeline p;
  p.connect(rx, 0, tap, 0);
  p.connect(tap, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  p.connect(decoder, 0, *screen, 0);
  Realization real(rtm, p);
  real.start();

  std::printf("[client] start_flow -> %s\n",
              server.start_flow(cam_name).c_str());

  if (!drive_until(rtm, [&] { return screen->eos(); }, rt::seconds(30))) {
    std::fprintf(stderr, "[client] timed out waiting for EOS (%" PRIu64
                 " frames seen)\n",
                 screen->stats().displayed);
    return 2;
  }

  const auto s = screen->stats();
  std::printf("[client] played %" PRIu64 " frames over %s (%s), %" PRIu64
              " corrupt\n",
              s.displayed, data->kind().c_str(), data->endpoint().c_str(),
              s.corrupt);
  std::printf("[client] digest %s over %" PRIu64 " packets\n",
              hex64(tap.digest()).c_str(), tap.items());

  if (s.displayed != frames || s.corrupt != 0) return 1;
  if (!expect.empty() && hex64(tap.digest()) != expect) {
    std::fprintf(stderr,
                 "[client] DIGEST MISMATCH: got %s, reference %s\n",
                 hex64(tap.digest()).c_str(), expect.c_str());
    return 1;
  }
  return 0;
}

// ---- orchestrator -----------------------------------------------------------------

pid_t spawn_role(const char* role, std::uint16_t port, std::uint64_t frames,
                 const std::string& expect) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const std::string port_s = std::to_string(port);
  const std::string frames_s = std::to_string(frames);
  if (expect.empty()) {
    execl("/proc/self/exe", "distributed_player", role, "--port",
          port_s.c_str(), "--frames", frames_s.c_str(),
          static_cast<char*>(nullptr));
  } else {
    execl("/proc/self/exe", "distributed_player", role, "--port",
          port_s.c_str(), "--frames", frames_s.c_str(), "--expect",
          expect.c_str(), static_cast<char*>(nullptr));
  }
  std::perror("execl");
  _exit(127);
}

int wait_role(pid_t pid, const char* role) {
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  std::fprintf(stderr, "%s terminated by signal %d\n", role,
               WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  return -1;
}

int run_orchestrator(std::uint64_t frames) {
  std::printf("=== reference: single process, SimLink, virtual time ===\n");
  const StreamResult ref = run_sim(frames);
  std::printf("sim digest %s over %" PRIu64 " packets, %" PRIu64
              " frames displayed\n",
              hex64(ref.digest).c_str(), ref.packets, ref.displayed);
  if (ref.displayed != frames) return 1;

  if (!config().real_net) {
    std::printf("\nINFOPIPE_NET=sim: real-socket run skipped (kill switch)\n");
    return 0;
  }

  // Loopback port pair for this run: derived from the pid, rounded even so
  // port+1 (the data link) stays in range and distinct runs rarely collide.
  const auto port = static_cast<std::uint16_t>(
      40000 + (static_cast<unsigned>(getpid()) % 20000u & ~1u));

  std::printf("\n=== real: two OS processes over loopback TCP :%u/:%u ===\n",
              port, port + 1);
  const pid_t server = spawn_role("--server", port, frames, "");
  const pid_t client =
      spawn_role("--client", port, frames, hex64(ref.digest));
  const int client_rc = wait_role(client, "client");
  const int server_rc = wait_role(server, "server");

  if (client_rc == 0 && server_rc == 0) {
    std::printf("\nstream across real TCP is byte-identical to the SimLink "
                "reference (digest %s)\n",
                hex64(ref.digest).c_str());
    return 0;
  }
  std::fprintf(stderr, "\nreal-socket run failed: server rc=%d client rc=%d\n",
               server_rc, client_rc);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool sim = false, is_server = false, is_client = false;
  std::uint16_t port = 0;
  std::uint64_t frames = kDefaultFrames;
  std::string expect;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--sim") sim = true;
    else if (a == "--server") is_server = true;
    else if (a == "--client") is_client = true;
    else if (a == "--port" && i + 1 < argc)
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    else if (a == "--frames" && i + 1 < argc) frames = std::stoul(argv[++i]);
    else if (a == "--expect" && i + 1 < argc) expect = argv[++i];
    else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 64;
    }
  }

  if (sim) {
    const StreamResult r = run_sim(frames);
    std::printf("sim digest %s over %" PRIu64 " packets, %" PRIu64
                " frames displayed\n",
                hex64(r.digest).c_str(), r.packets, r.displayed);
    return r.displayed == frames ? 0 : 1;
  }
  if (is_server) return run_server(port, frames);
  if (is_client) return run_client(port, frames, expect);
  return run_orchestrator(frames);
}
