// Distributed player: the full §2.4 story on two simulated nodes.
//
//   1. A server node registers factories; the client CREATES the remote
//      source through the middleware protocol (remote_create).
//   2. The binding protocol NEGOTIATES the flow: the camera's offered
//      Typespec and the display's requirement cross the network in
//      marshalled form, intersect, and the link's bandwidth bounds the QoS.
//   3. The pipeline is assembled with a netpipe in the middle; location is
//      a Typespec property that changes only at the netpipe.
//   4. START is broadcast and the stream plays across the "network".
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/binder.hpp"
#include "net/netpipe.hpp"
#include "net/node.hpp"

using namespace infopipe;
using namespace infopipe::media;
using namespace infopipe::net;

namespace {

/// Server-side source type, offering a typed flow.
class Camera : public MpegFileSource {
 public:
  Camera(const std::string& name, std::uint64_t frames)
      : MpegFileSource(name, [frames] {
          StreamConfig c;
          c.frames = frames;
          return c;
        }()) {}
};

/// Client-side display with explicit requirements.
class Screen : public VideoDisplay {
 public:
  explicit Screen(const std::string& name) : VideoDisplay(name, 30.0) {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kItemType, std::string("video")},
                    {props::kFormats, StringSet{"raw"}},
                    {props::kFrameRate, Range{10, 60}}};
  }
};

}  // namespace

int main() {
  rt::Runtime rt;

  // --- nodes and factories ---------------------------------------------------
  Node server(rt, "video-server");
  Node client(rt, "living-room");
  server.register_factory(
      "camera", [](const std::string& name, const std::string& args) {
        return std::make_unique<Camera>(
            name, args.empty() ? 300 : std::stoul(args));
      });

  // --- remote creation ----------------------------------------------------------
  const std::string cam_name =
      remote_create(rt, server, "camera", "cam0", "300");
  std::printf("created '%s' on node %s\n", cam_name.c_str(),
              server.name().c_str());
  auto* cam = dynamic_cast<Camera*>(server.lookup(cam_name));

  client.adopt(std::make_unique<Screen>("screen"));
  auto* screen = dynamic_cast<Screen*>(client.lookup("screen"));

  // --- negotiation -----------------------------------------------------------------
  LinkConfig lc;
  lc.bandwidth_bps = 4e6;
  lc.base_latency = rt::milliseconds(25);
  lc.jitter = rt::milliseconds(2);
  SimLink link(lc);

  // The camera offers mpeg; the screen demands raw — a decoder on the
  // client side bridges them, so negotiate against the decoder's input.
  MpegDecoder decoder("decoder");
  BindingRequest breq;
  breq.producer_node = &server;
  breq.producer = cam_name;
  breq.consumer_node = &client;
  breq.consumer = "screen";
  breq.link = &link;
  // Negotiating camera->screen directly fails (mpeg vs raw): show it.
  const BindingResult direct = negotiate(rt, breq);
  std::printf("direct binding: %s\n",
              direct.ok ? "accepted (unexpected!)" : "rejected as expected");
  if (!direct.ok) std::printf("  reason: %s\n", direct.failure.c_str());

  // With the decoder in the path the agreement is the camera's mpeg flow.
  Typespec cam_offer = remote_typespec_query(rt, server, cam_name, 0);
  auto agreed = cam_offer.intersect(decoder.input_requirement(0));
  std::printf("negotiated flow into the decoder: %s\n",
              agreed ? agreed->to_string().c_str() : "(failed)");

  // --- assemble the distributed pipeline --------------------------------------------
  ClockedPump send_pump("send-pump", 30.0);
  MarshalFilter marshal("marshal", encode_frame, "video");
  NetSender tx("tx", link, server.name());
  NetReceiver rx("rx", link, client.name());
  UnmarshalFilter unmarshal("unmarshal", decode_frame, "video");

  Pipeline p;
  p.connect(*cam, 0, send_pump, 0);
  p.connect(send_pump, 0, marshal, 0);
  p.connect(marshal, 0, tx, 0);
  p.connect(rx, 0, unmarshal, 0);
  p.connect(unmarshal, 0, decoder, 0);
  p.connect(decoder, 0, *screen, 0);
  Realization real(rt, p);

  std::printf("\n%s\n", real.describe().c_str());

  // Location typing: the flow is at the client only after the netpipe.
  Plan pl = plan(p);
  const Edge* last = p.edge_into(*screen, 0);
  std::printf("flow location at the screen: %s\n\n",
              pl.edge_spec.at(last)
                  .get<std::string>(props::kLocation)
                  .value_or("(unset)")
                  .c_str());

  real.start();
  rt.run();

  const auto s = screen->stats();
  std::printf("played %llu frames across the link (%llu I / %llu P / %llu B), "
              "%llu corrupt\n",
              static_cast<unsigned long long>(s.displayed),
              static_cast<unsigned long long>(s.per_type[kKindI]),
              static_cast<unsigned long long>(s.per_type[kKindP]),
              static_cast<unsigned long long>(s.per_type[kKindB]),
              static_cast<unsigned long long>(s.corrupt));
  std::printf("link: %llu packets, %llu dropped\n",
              static_cast<unsigned long long>(link.stats().sent),
              static_cast<unsigned long long>(link.stats().dropped_congestion));
  return s.displayed == 300 ? 0 : 1;
}
