// Surveillance: one camera, three consumers with different activity styles.
//
//   camera (active clocked source)
//      └── multicast tee ──► live display           (passive sink)
//                        ──► motion detector        (ACTIVE object)
//                        ──► buffer ─► store pump ─► recorder (sink)
//
// Shows: an active source as the section driver, a multicast tee fanning
// one flow into branches of different styles, an active-object component
// (written as a natural read-process-write loop) transparently getting a
// coroutine, and an independent recording section behind a buffer running
// at its own pace. §2.1: "developers of video on demand, video
// conferencing, and surveillance tools all can use any available video
// codec components."
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

/// A camera: clock-driven active source producing raw frames.
class Camera : public ClockedSourceBase {
 public:
  Camera(std::string name, double fps, std::uint64_t frames)
      : ClockedSourceBase(std::move(name), fps), frames_(frames) {}

 protected:
  Item generate() override {
    if (n_ >= frames_) return Item::eos();
    VideoFrame f;
    f.frame_no = n_;
    f.type = FrameType::kI;  // cameras produce raw "key" frames
    f.width = 640;
    f.height = 480;
    f.pts = pipeline_now();
    f.compressed_bytes = 640 * 480 * 3 / 2;
    f.content_id = static_cast<std::uint32_t>(n_ * 2654435761u);
    Item x = Item::of<VideoFrame>(f);
    x.seq = n_++;
    x.kind = kKindI;
    x.timestamp = f.pts;
    return x;
  }

 private:
  std::uint64_t frames_;
  std::uint64_t n_ = 0;
};

/// Motion detector, written as an ACTIVE object: the developer thinks in a
/// natural "grab two frames, compare, maybe raise an alarm" loop. The
/// middleware turns it into a coroutine on the camera's thread schedule.
class MotionDetector : public ActiveComponent {
 public:
  explicit MotionDetector(std::string name)
      : ActiveComponent(std::move(name)) {}

  int alarms = 0;

 protected:
  void run() override {
    Item prev = pull_prev();
    for (;;) {
      Item cur = pull_prev();
      const auto& a = prev.as<VideoFrame>();
      const auto& b = cur.as<VideoFrame>();
      // Synthetic "motion": content hash distance over a threshold.
      const std::uint32_t diff = a.content_id ^ b.content_id;
      if ((diff & 0xFF) > 0xE0) {
        ++alarms;
        broadcast(Event{kEventUser + 99, b.frame_no});
      }
      push_next(std::move(prev));  // annotated flow continues downstream
      prev = std::move(cur);
    }
  }
};

/// Alarm-counting sink for the detector branch (the detector consumes the
/// flow; this just terminates the branch).
class AlarmSink : public PassiveSink {
 public:
  using PassiveSink::PassiveSink;
  std::uint64_t frames = 0;

 protected:
  void consume(Item) override { ++frames; }
};

}  // namespace

int main() {
  rt::Runtime rt;

  Camera camera("camera", 25.0, 250);  // 10 seconds of video
  MulticastTee tee("tee", 3);

  VideoDisplay live("live-display", 25.0);

  MotionDetector detector("motion");
  AlarmSink alarm_sink("alarm-sink");

  Buffer spool("spool", 16, FullPolicy::kDropOldest, EmptyPolicy::kBlock);
  ClockedPump store_pump("store-pump", 5.0);  // record at 5 fps
  CountingSink recorder("recorder");

  Pipeline p;
  p.connect(camera, 0, tee, 0);
  p.connect(tee, 0, live, 0);
  p.connect(tee, 1, detector, 0);
  p.connect(detector, 0, alarm_sink, 0);
  p.connect(tee, 2, spool, 0);
  p.connect(spool, 0, store_pump, 0);
  p.connect(store_pump, 0, recorder, 0);

  Realization real(rt, p);
  std::printf("threads: %zu (camera section + motion coroutine + store pump)\n",
              real.thread_count());

  int motion_events = 0;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventUser + 99) ++motion_events;
  });

  real.start();
  rt.run();

  std::printf("camera frames: %llu\n",
              static_cast<unsigned long long>(camera.items_pumped()));
  std::printf("live display:  %llu frames, mean |jitter| %.3f ms\n",
              static_cast<unsigned long long>(live.stats().displayed),
              live.stats().mean_abs_jitter_ms);
  std::printf("motion:        %d alarms over %llu frames\n", detector.alarms,
              static_cast<unsigned long long>(alarm_sink.frames));
  std::printf("recorder:      %llu frames stored at 5 fps (%llu spilled)\n",
              static_cast<unsigned long long>(recorder.count()),
              static_cast<unsigned long long>(spool.stats().drops));
  return live.stats().displayed == 250 ? 0 : 1;
}
