// VCR: interactive-style transport controls over a playing pipeline —
// pause/resume (STOP/START broadcasts, §2.2's "user commands to start or
// stop playing") and seek (kEventSeek snaps to a GOP boundary so the
// decoder restarts from a reference frame). The script below plays, pauses,
// skips forward, rewinds, and plays out; the display's log shows that no
// frame ever decodes corrupt — seeks land on I frames by construction.
#include <cstdio>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"

using namespace infopipe;
using namespace infopipe::media;

int main() {
  rt::Runtime rt;
  StreamConfig cfg;
  cfg.frames = 3000;  // 100 s of 30 fps video
  MpegFileSource movie("feature.mpg", cfg);
  MpegDecoder decoder("decoder");
  ClockedPump pump("pump", cfg.fps);
  VideoDisplay screen("screen", cfg.fps);
  // The shared-pipeline overload keeps the composed graph alive for the
  // realization's lifetime.
  Realization player(rt, (movie >> decoder >> pump >> screen).share());

  auto status = [&](const char* action) {
    std::printf("%-22s t=%5.1fs  shown=%4llu  corrupt=%llu  source@%llu\n",
                action, static_cast<double>(rt.now()) / 1e9,
                static_cast<unsigned long long>(screen.stats().displayed),
                static_cast<unsigned long long>(screen.stats().corrupt),
                static_cast<unsigned long long>(movie.produced()));
  };

  player.start();
  rt.run_until(rt::seconds(3));
  status("play 3s");

  player.stop();  // pause
  rt.run_until(rt::seconds(5));
  status("paused 2s");

  // Skip to ~frame 1500 (50 s in); the source snaps to the GOP boundary.
  player.post_event_to(movie, Event{kEventSeek, std::uint64_t{1500}});
  player.start();
  rt.run_until(rt::seconds(8));
  status("seek->1500, play 3s");

  // Rewind to ~frame 300 and play a bit.
  player.post_event_to(movie, Event{kEventSeek, std::uint64_t{300}});
  rt.run_until(rt::seconds(11));
  status("seek->300, play 3s");

  // Let the rest of the movie play out (virtual time: instantaneous).
  rt.run();
  status("played to end");

  std::printf("\n%s", player.stats_report().c_str());
  return screen.stats().corrupt == 0 ? 0 : 1;
}
