// Sharded player: the Figure 1 video pipeline split across two kernel
// threads.
//
// The decode half (file source, fill pump, decoder) lands on one shard and
// the presentation half (play pump, display) on the other; the partitioner
// cuts at the passive frame buffer, which becomes a lock-free cross-shard
// channel. Control events still flow pipeline-wide: the display's
// frame-release broadcasts cross the shard boundary back to the decoder's
// reference tracker, exactly as they would inside one runtime.
//
// On a multi-core host the two halves overlap (decode of frame n+1 runs
// while frame n is presented); on one core the program is still correct,
// just serialized.
//
// A Rebalancer watches the placement while the movie plays: if the decode
// shard stays much busier than the presentation shard it migrates a
// section across — mid-playback, without dropping a frame. On this evenly
// split pipeline it normally just accounts and holds still; force a skew
// (e.g. raise the decoder cost) to see balance.migration.count move.
//
// After the movie ends the program turns the SAME running shard group into
// a multi-session server (docs/TUTORIAL.md §16): one SharedPlan analyzed
// once, a SessionTable stamping a few thousand mixed-class flows out of it,
// a SessionAcceptor admitting them against measured load. Everything that
// merely drives the playback realization goes through RealizationHandle&,
// the uniform control surface.
// `sharded_player --record trace.bin` instead runs a record-friendly
// variant of the same split pipeline (clocked fill, digest probes on both
// sides of the cut, one FORCED mid-flow migration) with a ScheduleRecorder
// installed, and writes the schedule trace; `sharded_player --replay
// trace.bin` re-executes that run deterministically on the manual lockstep
// substrate and exits nonzero unless the per-flow digests are
// bit-identical. That pair is the thread-transparency claim as a shell
// command. `--record-elastic trace.bin` goes one further: the mid-flow
// migration lands on a shard ADDED during playback and the old home shard
// is retired afterwards, so the trace carries scale events too — and the
// same `--replay` must still match digest for digest (ARCHITECTURE §19).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "balance/accountant.hpp"
#include "balance/rebalancer.hpp"
#include "core/infopipes.hpp"
#include "core/realization_handle.hpp"
#include "media/mpeg.hpp"
#include "replay/digest.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/trace.hpp"
#include "session/acceptor.hpp"
#include "session/plan.hpp"
#include "session/table.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

/// The record/replay pipeline: the Figure 1 shape, but the fill pump is
/// clocked (so the stream provably spans the forced migration) and a
/// DigestProbe sits on each side of the cross-shard cut. Both the live
/// recording run and the lockstep replay build THIS same structure — the
/// builder below is the shared recipe.
struct ProbedPlayer {
  StreamConfig cfg;
  MpegFileSource movie;
  ClockedPump fill;
  MpegDecoder decoder;
  replay::DigestProbe decoded{"decoded"};
  Buffer frames;
  FreeRunningPump play;
  replay::DigestProbe presented{"presented"};
  VideoDisplay display;
  Pipeline p;
  std::optional<shard::ShardedRealization> real;

  explicit ProbedPlayer(shard::ShardGroup& g)
      : cfg(make_cfg()),
        movie("movie.mpg", cfg),
        fill("fill", 300.0),
        decoder("decoder"),
        frames("frames", 16),
        play("play"),
        display("display", cfg.fps) {
    p.connect(movie, 0, fill, 0);
    p.connect(fill, 0, decoder, 0);
    p.connect(decoder, 0, decoded, 0);
    p.connect(decoded, 0, frames, 0);
    p.connect(frames, 0, play, 0);
    p.connect(play, 0, presented, 0);
    p.connect(presented, 0, display, 0);
    real.emplace(g, p);
  }

  static StreamConfig make_cfg() {
    StreamConfig c;
    c.frames = 600;
    c.fps = 30.0;
    return c;
  }

  [[nodiscard]] std::vector<replay::Trace::Flow> flows() const {
    return {replay::Trace::Flow{"decoded", decoded.digest(), decoded.items()},
            replay::Trace::Flow{"presented", presented.digest(),
                                presented.items()}};
  }
};

int run_record(const char* path, bool elastic) {
  replay::ScheduleRecorder rec;
  replay::Trace trace;
  {
    shard::ShardGroup group(2);
    ProbedPlayer pl(group);
    rec.attach(group);
    if (!rec.install()) {
      std::fprintf(stderr, "recording disabled (INFOPIPE_RECORD=off)\n");
      return 1;
    }
    group.launch();
    pl.real->start();
    // The forced mid-flow topology event: 600 frames at 300 Hz is a 2 s
    // stream, so 500 ms in, the presentation half moves shards
    // mid-playback. In elastic mode the move lands on a shard added right
    // now, and the old home is retired afterwards — a grow, a migration
    // and a shrink, all recorded as trace frames.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const int home = pl.real->shard_of_section(1);
    if (elastic) {
      const int added = group.add_shard();
      pl.real->sync_topology();
      pl.real->migrate_section(1, added);
      group.retire_shard(home);
    } else {
      pl.real->migrate_section(1, 1 - home);
    }
    if (!pl.real->wait_finished(std::chrono::seconds(60))) {
      std::fprintf(stderr, "recording run did not finish in time\n");
      return 1;
    }
    group.stop();
    rec.uninstall();
    for (const replay::Trace::Flow& f : pl.flows()) {
      rec.note_flow(f.name, f.digest, f.items);
    }
    trace = rec.finish();
    const VideoDisplay::Stats st = pl.display.stats();
    std::printf("recorded: %llu frames displayed (%llu corrupt)\n",
                static_cast<unsigned long long>(st.displayed),
                static_cast<unsigned long long>(st.corrupt));
    if (st.displayed != pl.cfg.frames) {
      std::fprintf(stderr, "stream incomplete, not writing trace\n");
      return 1;
    }
  }
  trace.save(path);
  std::printf("%s\n", trace.summary().c_str());
  for (const replay::Trace::Flow& f : trace.flows) {
    std::printf("flow '%s': digest %016llx over %llu items\n", f.name.c_str(),
                static_cast<unsigned long long>(f.digest),
                static_cast<unsigned long long>(f.items));
  }
  std::printf("trace written to %s\n", path);
  return 0;
}

int run_replay(const char* path) {
  replay::Trace trace;
  try {
    trace = replay::Trace::load(path);
  } catch (const replay::TraceError& e) {
    std::fprintf(stderr, "cannot load trace: %s\n", e.what());
    return 1;
  }
  std::printf("%s\n", trace.summary().c_str());
  replay::Replayer rp(trace);
  const replay::ReplayResult res = rp.run([](shard::ShardGroup& g) {
    auto st = std::make_shared<ProbedPlayer>(g);
    st->real->start();
    replay::Replayer::Build b;
    b.state = st;
    b.real = &*st->real;
    b.flows = [st] { return st->flows(); };
    return b;
  });
  std::printf("%s\n", res.summary.c_str());
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--record") == 0) {
    return run_record(argv[2], /*elastic=*/false);
  }
  if (argc == 3 && std::strcmp(argv[1], "--record-elastic") == 0) {
    return run_record(argv[2], /*elastic=*/true);
  }
  if (argc == 3 && std::strcmp(argv[1], "--replay") == 0) {
    return run_replay(argv[2]);
  }
  if (argc != 1) {
    std::fprintf(
        stderr,
        "usage: %s [--record FILE | --record-elastic FILE | --replay FILE]\n",
        argv[0]);
    return 2;
  }
  StreamConfig cfg;
  cfg.frames = 600;
  cfg.fps = 30.0;
  MpegFileSource movie("movie.mpg", cfg);
  FreeRunningPump fill("fill");
  MpegDecoder decoder("decoder");
  // ~50 us of simulated decode work per KB of coded data: enough that the
  // decode shard, not the channel, is the bottleneck.
  decoder.set_cost_per_kb(rt::microseconds(50));
  Buffer frames("frames", 16);
  FreeRunningPump play("play");
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(movie, 0, fill, 0);
  p.connect(fill, 0, decoder, 0);
  p.connect(decoder, 0, frames, 0);
  p.connect(frames, 0, play, 0);
  p.connect(play, 0, display, 0);

  shard::ShardGroup group(2);
  shard::ShardedRealization real(group, p);
  // Everything below that merely drives the realization — lifecycle,
  // introspection, progress — goes through the abstract control surface;
  // only wait_finished() and the Rebalancer need the concrete type.
  RealizationHandle& player = real;
  std::printf("%s\n", player.describe().c_str());

  balance::Rebalancer::Options ropt;
  ropt.period = rt::milliseconds(250);
  balance::Rebalancer rb(real, ropt);

  const auto t0 = std::chrono::steady_clock::now();
  player.start();  // = control(kEventStart)
  rb.launch();
  if (!real.wait_finished(std::chrono::seconds(120))) {
    std::fprintf(stderr, "player did not finish in time\n");
    return 1;
  }
  rb.stop();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  const VideoDisplay::Stats st = display.stats();
  std::printf("played %llu/%llu frames (%llu corrupt) in %.0f ms\n",
              static_cast<unsigned long long>(st.displayed),
              static_cast<unsigned long long>(cfg.frames),
              static_cast<unsigned long long>(st.corrupt), ms);

  const StatsSnapshot snap = player.stats_snapshot();
  for (const ChannelStats& ch : snap.channels) {
    std::printf(
        "channel '%s' shard%d->shard%d: %llu puts, %llu takes, "
        "%llu producer stalls, %llu consumer stalls, %llu wakeups\n",
        ch.flow.name.c_str(), ch.from_shard, ch.to_shard,
        static_cast<unsigned long long>(ch.flow.puts),
        static_cast<unsigned long long>(ch.flow.takes),
        static_cast<unsigned long long>(ch.flow.put_blocks),
        static_cast<unsigned long long>(ch.flow.take_blocks),
        static_cast<unsigned long long>(ch.wakeups));
  }
  const obs::MetricsSnapshot m = player.metrics_snapshot();
  for (const char* row : {"shard0.rt.dispatches", "shard1.rt.dispatches"}) {
    if (const obs::MetricValue* v = m.find(row)) {
      std::printf("%s = %llu\n", row,
                  static_cast<unsigned long long>(v->count));
    }
  }
  const obs::MetricsSnapshot bm = rb.metrics_snapshot();
  if (const obs::MetricValue* v = bm.find("balance.migration.count")) {
    std::printf("rebalancer: %llu steps, %llu migrations\n",
                static_cast<unsigned long long>(rb.steps()),
                static_cast<unsigned long long>(v->count));
  } else {
    std::printf("rebalancer: %llu steps, 0 migrations\n",
                static_cast<unsigned long long>(rb.steps()));
  }

  // ---- phase 2: the same group, as a multi-session server -------------------
  //
  // The movie needed one realization. A server holds thousands of flows,
  // and charging each one a full plan+realize is the per-use cost the
  // plan/realization split exists to avoid. One SharedPlan is analyzed
  // once; the SessionTable realizes one engine per shard of the STILL
  // RUNNING group and stamps every open out of that single PlanInfo.
  std::printf("\n-- session server phase: one plan, many flows --\n");
  auto plan = session::SharedPlan::analyze(session::EngineSpec{});
  session::SessionTable table(group, plan);
  balance::LoadAccountant acct(group);
  session::SessionAcceptor acceptor(table, acct);
  table.start_loops();  // gold steals pump rate from bronze under pressure

  constexpr int kFlows = 3000;
  std::vector<session::SessionId> ids;
  ids.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    session::SessionParams sp;
    sp.qos = static_cast<session::QosClass>(i % session::kNumClasses);
    sp.rate_hz = 5.0 + static_cast<double>(i % 8) * 5.0;
    const auto r = acceptor.open(sp);
    if (r.ok) ids.push_back(r.id);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  const session::JitterSnapshot j = table.jitter();
  std::printf(
      "sessions: %llu live / %d asked, %llu admitted, %llu rejected\n",
      static_cast<unsigned long long>(table.live()), kFlows,
      static_cast<unsigned long long>(acceptor.admitted()),
      static_cast<unsigned long long>(acceptor.rejected()));
  std::printf(
      "realizations: %llu (the whole fleet shares %d engine plans)\n",
      static_cast<unsigned long long>(table.realizations()), table.shards());
  std::printf("items emitted: %llu; inter-item jitter p50 %llu ns, "
              "p99 %llu ns over %llu samples\n",
              static_cast<unsigned long long>(table.items_total()),
              static_cast<unsigned long long>(j.p50_ns),
              static_cast<unsigned long long>(j.p99_ns),
              static_cast<unsigned long long>(j.samples));

  table.stop_loops();
  for (const session::SessionId id : ids) acceptor.close(id);
  std::printf("closed all: %llu live\n",
              static_cast<unsigned long long>(table.live()));
  return 0;
}
