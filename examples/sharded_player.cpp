// Sharded player: the Figure 1 video pipeline split across two kernel
// threads.
//
// The decode half (file source, fill pump, decoder) lands on one shard and
// the presentation half (play pump, display) on the other; the partitioner
// cuts at the passive frame buffer, which becomes a lock-free cross-shard
// channel. Control events still flow pipeline-wide: the display's
// frame-release broadcasts cross the shard boundary back to the decoder's
// reference tracker, exactly as they would inside one runtime.
//
// On a multi-core host the two halves overlap (decode of frame n+1 runs
// while frame n is presented); on one core the program is still correct,
// just serialized.
//
// A Rebalancer watches the placement while the movie plays: if the decode
// shard stays much busier than the presentation shard it migrates a
// section across — mid-playback, without dropping a frame. On this evenly
// split pipeline it normally just accounts and holds still; force a skew
// (e.g. raise the decoder cost) to see balance.migration.count move.
#include <chrono>
#include <cstdio>

#include "balance/rebalancer.hpp"
#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

using namespace infopipe;
using namespace infopipe::media;

int main() {
  StreamConfig cfg;
  cfg.frames = 600;
  cfg.fps = 30.0;
  MpegFileSource movie("movie.mpg", cfg);
  FreeRunningPump fill("fill");
  MpegDecoder decoder("decoder");
  // ~50 us of simulated decode work per KB of coded data: enough that the
  // decode shard, not the channel, is the bottleneck.
  decoder.set_cost_per_kb(rt::microseconds(50));
  Buffer frames("frames", 16);
  FreeRunningPump play("play");
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(movie, 0, fill, 0);
  p.connect(fill, 0, decoder, 0);
  p.connect(decoder, 0, frames, 0);
  p.connect(frames, 0, play, 0);
  p.connect(play, 0, display, 0);

  shard::ShardGroup group(2);
  shard::ShardedRealization real(group, p);
  std::printf("%s\n", real.describe().c_str());

  balance::Rebalancer::Options ropt;
  ropt.period = rt::milliseconds(250);
  balance::Rebalancer rb(real, ropt);

  const auto t0 = std::chrono::steady_clock::now();
  real.start();
  rb.launch();
  if (!real.wait_finished(std::chrono::seconds(120))) {
    std::fprintf(stderr, "player did not finish in time\n");
    return 1;
  }
  rb.stop();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  const VideoDisplay::Stats st = display.stats();
  std::printf("played %llu/%llu frames (%llu corrupt) in %.0f ms\n",
              static_cast<unsigned long long>(st.displayed),
              static_cast<unsigned long long>(cfg.frames),
              static_cast<unsigned long long>(st.corrupt), ms);

  const StatsSnapshot snap = real.stats_snapshot();
  for (const ChannelStats& ch : snap.channels) {
    std::printf(
        "channel '%s' shard%d->shard%d: %llu puts, %llu takes, "
        "%llu producer stalls, %llu consumer stalls, %llu wakeups\n",
        ch.flow.name.c_str(), ch.from_shard, ch.to_shard,
        static_cast<unsigned long long>(ch.flow.puts),
        static_cast<unsigned long long>(ch.flow.takes),
        static_cast<unsigned long long>(ch.flow.put_blocks),
        static_cast<unsigned long long>(ch.flow.take_blocks),
        static_cast<unsigned long long>(ch.wakeups));
  }
  const obs::MetricsSnapshot m = real.metrics_snapshot();
  for (const char* row : {"shard0.rt.dispatches", "shard1.rt.dispatches"}) {
    if (const obs::MetricValue* v = m.find(row)) {
      std::printf("%s = %llu\n", row,
                  static_cast<unsigned long long>(v->count));
    }
  }
  const obs::MetricsSnapshot bm = rb.metrics_snapshot();
  if (const obs::MetricValue* v = bm.find("balance.migration.count")) {
    std::printf("rebalancer: %llu steps, %llu migrations\n",
                static_cast<unsigned long long>(rb.steps()),
                static_cast<unsigned long long>(v->count));
  } else {
    std::printf("rebalancer: %llu steps, 0 migrations\n",
                static_cast<unsigned long long>(rb.steps()));
  }
  return 0;
}
