// Sharded player: the Figure 1 video pipeline split across two kernel
// threads.
//
// The decode half (file source, fill pump, decoder) lands on one shard and
// the presentation half (play pump, display) on the other; the partitioner
// cuts at the passive frame buffer, which becomes a lock-free cross-shard
// channel. Control events still flow pipeline-wide: the display's
// frame-release broadcasts cross the shard boundary back to the decoder's
// reference tracker, exactly as they would inside one runtime.
//
// On a multi-core host the two halves overlap (decode of frame n+1 runs
// while frame n is presented); on one core the program is still correct,
// just serialized.
//
// A Rebalancer watches the placement while the movie plays: if the decode
// shard stays much busier than the presentation shard it migrates a
// section across — mid-playback, without dropping a frame. On this evenly
// split pipeline it normally just accounts and holds still; force a skew
// (e.g. raise the decoder cost) to see balance.migration.count move.
//
// After the movie ends the program turns the SAME running shard group into
// a multi-session server (docs/TUTORIAL.md §16): one SharedPlan analyzed
// once, a SessionTable stamping a few thousand mixed-class flows out of it,
// a SessionAcceptor admitting them against measured load. Everything that
// merely drives the playback realization goes through RealizationHandle&,
// the uniform control surface.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "balance/accountant.hpp"
#include "balance/rebalancer.hpp"
#include "core/infopipes.hpp"
#include "core/realization_handle.hpp"
#include "media/mpeg.hpp"
#include "session/acceptor.hpp"
#include "session/plan.hpp"
#include "session/table.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

using namespace infopipe;
using namespace infopipe::media;

int main() {
  StreamConfig cfg;
  cfg.frames = 600;
  cfg.fps = 30.0;
  MpegFileSource movie("movie.mpg", cfg);
  FreeRunningPump fill("fill");
  MpegDecoder decoder("decoder");
  // ~50 us of simulated decode work per KB of coded data: enough that the
  // decode shard, not the channel, is the bottleneck.
  decoder.set_cost_per_kb(rt::microseconds(50));
  Buffer frames("frames", 16);
  FreeRunningPump play("play");
  VideoDisplay display("display", cfg.fps);

  Pipeline p;
  p.connect(movie, 0, fill, 0);
  p.connect(fill, 0, decoder, 0);
  p.connect(decoder, 0, frames, 0);
  p.connect(frames, 0, play, 0);
  p.connect(play, 0, display, 0);

  shard::ShardGroup group(2);
  shard::ShardedRealization real(group, p);
  // Everything below that merely drives the realization — lifecycle,
  // introspection, progress — goes through the abstract control surface;
  // only wait_finished() and the Rebalancer need the concrete type.
  RealizationHandle& player = real;
  std::printf("%s\n", player.describe().c_str());

  balance::Rebalancer::Options ropt;
  ropt.period = rt::milliseconds(250);
  balance::Rebalancer rb(real, ropt);

  const auto t0 = std::chrono::steady_clock::now();
  player.start();  // = control(kEventStart)
  rb.launch();
  if (!real.wait_finished(std::chrono::seconds(120))) {
    std::fprintf(stderr, "player did not finish in time\n");
    return 1;
  }
  rb.stop();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

  const VideoDisplay::Stats st = display.stats();
  std::printf("played %llu/%llu frames (%llu corrupt) in %.0f ms\n",
              static_cast<unsigned long long>(st.displayed),
              static_cast<unsigned long long>(cfg.frames),
              static_cast<unsigned long long>(st.corrupt), ms);

  const StatsSnapshot snap = player.stats_snapshot();
  for (const ChannelStats& ch : snap.channels) {
    std::printf(
        "channel '%s' shard%d->shard%d: %llu puts, %llu takes, "
        "%llu producer stalls, %llu consumer stalls, %llu wakeups\n",
        ch.flow.name.c_str(), ch.from_shard, ch.to_shard,
        static_cast<unsigned long long>(ch.flow.puts),
        static_cast<unsigned long long>(ch.flow.takes),
        static_cast<unsigned long long>(ch.flow.put_blocks),
        static_cast<unsigned long long>(ch.flow.take_blocks),
        static_cast<unsigned long long>(ch.wakeups));
  }
  const obs::MetricsSnapshot m = player.metrics_snapshot();
  for (const char* row : {"shard0.rt.dispatches", "shard1.rt.dispatches"}) {
    if (const obs::MetricValue* v = m.find(row)) {
      std::printf("%s = %llu\n", row,
                  static_cast<unsigned long long>(v->count));
    }
  }
  const obs::MetricsSnapshot bm = rb.metrics_snapshot();
  if (const obs::MetricValue* v = bm.find("balance.migration.count")) {
    std::printf("rebalancer: %llu steps, %llu migrations\n",
                static_cast<unsigned long long>(rb.steps()),
                static_cast<unsigned long long>(v->count));
  } else {
    std::printf("rebalancer: %llu steps, 0 migrations\n",
                static_cast<unsigned long long>(rb.steps()));
  }

  // ---- phase 2: the same group, as a multi-session server -------------------
  //
  // The movie needed one realization. A server holds thousands of flows,
  // and charging each one a full plan+realize is the per-use cost the
  // plan/realization split exists to avoid. One SharedPlan is analyzed
  // once; the SessionTable realizes one engine per shard of the STILL
  // RUNNING group and stamps every open out of that single PlanInfo.
  std::printf("\n-- session server phase: one plan, many flows --\n");
  auto plan = session::SharedPlan::analyze(session::EngineSpec{});
  session::SessionTable table(group, plan);
  balance::LoadAccountant acct(group);
  session::SessionAcceptor acceptor(table, acct);
  table.start_loops();  // gold steals pump rate from bronze under pressure

  constexpr int kFlows = 3000;
  std::vector<session::SessionId> ids;
  ids.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    session::SessionParams sp;
    sp.qos = static_cast<session::QosClass>(i % session::kNumClasses);
    sp.rate_hz = 5.0 + static_cast<double>(i % 8) * 5.0;
    const auto r = acceptor.open(sp);
    if (r.ok) ids.push_back(r.id);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  const session::JitterSnapshot j = table.jitter();
  std::printf(
      "sessions: %llu live / %d asked, %llu admitted, %llu rejected\n",
      static_cast<unsigned long long>(table.live()), kFlows,
      static_cast<unsigned long long>(acceptor.admitted()),
      static_cast<unsigned long long>(acceptor.rejected()));
  std::printf(
      "realizations: %llu (the whole fleet shares %d engine plans)\n",
      static_cast<unsigned long long>(table.realizations()), table.shards());
  std::printf("items emitted: %llu; inter-item jitter p50 %llu ns, "
              "p99 %llu ns over %llu samples\n",
              static_cast<unsigned long long>(table.items_total()),
              static_cast<unsigned long long>(j.p50_ns),
              static_cast<unsigned long long>(j.p99_ns),
              static_cast<unsigned long long>(j.samples));

  table.stop_loops();
  for (const session::SessionId id : ids) acceptor.close(id);
  std::printf("closed all: %llu live\n",
              static_cast<unsigned long long>(table.live()));
  return 0;
}
