// MIDI mixer: the paper's small-item workload (§4).
//
// "The approach that we have presented, in which threads and coroutines are
// introduced only when necessary, is mostly important for pipelines that
// handle many control events or many small data items such as a MIDI
// mixer."
//
// Four channels of three-byte MIDI events flow through transpose/gain
// stages into a mixer and a recorder. The planner fuses every stage into
// the section's driver thread, so the whole graph runs on 4 threads (one
// per channel pump... and none for the 10 processing components). For
// contrast, --threaded forces a naive thread-per-component allocation by
// writing each stage as an ACTIVE object: same code shape, 14 threads, and
// the context-switch counter tells the story.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/infopipes.hpp"
#include "media/midi.hpp"

using namespace infopipe;
using namespace infopipe::media;

namespace {

constexpr std::uint64_t kEventsPerChannel = 20000;
constexpr int kChannels = 4;

/// Active-object version of MidiTranspose: identical behaviour, written as a
/// main function. Forces a coroutine (thread) per instance.
class ActiveTranspose : public ActiveComponent {
 public:
  ActiveTranspose(std::string name, int semitones)
      : ActiveComponent(std::move(name)), semitones_(semitones) {}

 protected:
  void run() override {
    for (;;) {
      Item x = pull_prev();
      const MidiEvent* in = x.payload<MidiEvent>();
      if (in != nullptr) {
        MidiEvent out = *in;
        out.note = static_cast<std::uint8_t>(
            std::clamp(static_cast<int>(out.note) + semitones_, 0, 127));
        Item y = Item::of<MidiEvent>(out);
        y.seq = x.seq;
        y.kind = x.kind;
        push_next(std::move(y));
      }
    }
  }

 private:
  int semitones_;
};

struct Result {
  std::uint64_t mixed = 0;
  std::size_t threads = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t messages = 0;
};

Result run(bool thread_per_component) {
  rt::Runtime rt;

  std::vector<std::unique_ptr<MidiSource>> sources;
  std::vector<std::unique_ptr<FreeRunningPump>> pumps;
  std::vector<std::unique_ptr<Component>> stages;  // transpose + gain
  MidiMixer mixer("mixer", kChannels);
  CountingSink recorder("recorder");

  Pipeline p;
  for (int c = 0; c < kChannels; ++c) {
    sources.push_back(std::make_unique<MidiSource>(
        "ch" + std::to_string(c), kEventsPerChannel,
        static_cast<std::uint8_t>(c)));
    pumps.push_back(
        std::make_unique<FreeRunningPump>("pump" + std::to_string(c)));

    Component* transpose;
    if (thread_per_component) {
      stages.push_back(std::make_unique<ActiveTranspose>(
          "transpose" + std::to_string(c), c * 3));
    } else {
      stages.push_back(std::make_unique<MidiTranspose>(
          "transpose" + std::to_string(c), c * 3));
    }
    transpose = stages.back().get();

    stages.push_back(
        std::make_unique<MidiGain>("gain" + std::to_string(c), 0.9));
    Component* gain = stages[stages.size() - 1].get();

    p.connect(*sources[static_cast<std::size_t>(c)], 0,
              *pumps[static_cast<std::size_t>(c)], 0);
    p.connect(*pumps[static_cast<std::size_t>(c)], 0, *transpose, 0);
    p.connect(*transpose, 0, *gain, 0);
    p.connect(*gain, 0, mixer, c);
  }
  p.connect(mixer, 0, recorder, 0);

  Realization real(rt, p);
  rt.reset_stats();
  real.start();
  rt.run();

  Result r;
  r.mixed = recorder.count();
  r.threads = real.thread_count();
  r.context_switches = rt.stats().context_switches;
  r.messages = rt.stats().messages_sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool both = !(argc > 1 && std::strcmp(argv[1], "--threaded") == 0);

  const Result fused = run(/*thread_per_component=*/false);
  std::printf("planner-minimized: %llu events mixed on %zu threads, "
              "%llu context switches, %llu messages\n",
              static_cast<unsigned long long>(fused.mixed), fused.threads,
              static_cast<unsigned long long>(fused.context_switches),
              static_cast<unsigned long long>(fused.messages));

  if (both) {
    const Result threaded = run(/*thread_per_component=*/true);
    std::printf("thread-per-stage:  %llu events mixed on %zu threads, "
                "%llu context switches, %llu messages\n",
                static_cast<unsigned long long>(threaded.mixed),
                threaded.threads,
                static_cast<unsigned long long>(threaded.context_switches),
                static_cast<unsigned long long>(threaded.messages));
    if (fused.context_switches > 0) {
      std::printf("switch ratio: %.1fx\n",
                  static_cast<double>(threaded.context_switches) /
                      static_cast<double>(fused.context_switches));
    }
  }
  return 0;
}
