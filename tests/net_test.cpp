// Tests for the distribution substrate: simulated transport, netpipes with
// marshalling, location typing, and the remote node protocol (§2.4).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/infopipes.hpp"
#include "net/netpipe.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "net/typespec_wire.hpp"

namespace infopipe::net {
namespace {

// ---------- Typespec wire format ------------------------------------------------

TEST(TypespecWire, RoundTripsAllValueKinds) {
  Typespec t;
  t.set("flag", true);
  t.set("count", std::int64_t{-42});
  t.set("rate", 29.97);
  t.set("name", std::string("video|with\x1Fseparators\\and backslash"));
  t.set("range", Range{0.5, 144.25});
  t.set("formats", StringSet{"mpeg1", "h|261", "raw"});
  const Typespec back = unmarshal_typespec(marshal_typespec(t));
  EXPECT_EQ(back, t);
}

TEST(TypespecWire, EmptySpecRoundTrips) {
  EXPECT_EQ(unmarshal_typespec(marshal_typespec(Typespec{})), Typespec{});
}

TEST(TypespecWire, MalformedInputThrows) {
  EXPECT_THROW((void)unmarshal_typespec("garbage"), RemoteError);
}

// With real sockets (ip_netreal) this parser faces untrusted bytes. Every
// mutilation must surface as RemoteError — never another exception type
// (std::stoll's invalid_argument/out_of_range leaking through), never a
// crash or over-read.

TEST(TypespecWire, EveryTruncationFailsCleanlyOrParses) {
  Typespec t;
  t.set("rate", 29.97);
  t.set("count", std::int64_t{1234567});
  t.set("range", Range{-1.5, 99.25});
  t.set("formats", StringSet{"mpeg1", "raw"});
  const std::string wire = marshal_typespec(t);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    try {
      (void)unmarshal_typespec(wire.substr(0, n));  // prefix
    } catch (const RemoteError&) {
    }
    try {
      (void)unmarshal_typespec(wire.substr(n));  // suffix
    } catch (const RemoteError&) {
    }
  }
}

TEST(TypespecWire, OversizedNumbersAreRemoteErrors) {
  // std::stoll/std::stod would throw std::out_of_range here.
  EXPECT_THROW((void)unmarshal_typespec("k\x1Fi:999999999999999999999999\x1E"),
               RemoteError);
  EXPECT_THROW((void)unmarshal_typespec("k\x1F"
                                        "d:1e99999999\x1E"),
               RemoteError);
  EXPECT_THROW((void)unmarshal_typespec("k\x1Fi:12x\x1E"), RemoteError);
  EXPECT_THROW((void)unmarshal_typespec("k\x1Fr:1.0;2.0\x1E"), RemoteError);
  EXPECT_THROW((void)unmarshal_typespec("k\x1Fz:??\x1E"), RemoteError);
}

TEST(TypespecWire, BitFlippedInputNeverCrashes) {
  Typespec t;
  t.set("flag", true);
  t.set("count", std::int64_t{-42});
  t.set("rate", 29.97);
  t.set("name", std::string("video"));
  t.set("range", Range{0.5, 144.25});
  const std::string wire = marshal_typespec(t);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = wire;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      try {
        (void)unmarshal_typespec(bad);  // parse or RemoteError, nothing else
      } catch (const RemoteError&) {
      }
    }
  }
}

// ---------- SimLink ---------------------------------------------------------------

TEST(SimLink, DeliversInOrderWithLatency) {
  rt::Runtime rtm;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1 byte/us
  cfg.base_latency = rt::milliseconds(5);
  cfg.jitter = 0;
  SimLink link(cfg);

  std::vector<std::pair<std::uint64_t, rt::Time>> got;
  const rt::ThreadId rx = rtm.spawn(
      "rx", rt::kPriorityData, [&](rt::Runtime& r, rt::Message m) {
        if (m.type == kMsgNetDeliver) {
          got.emplace_back(m.get<Item>()->seq, r.now());
        }
        return rt::CodeResult::kContinue;
      });
  link.attach_receiver(rx);

  for (int i = 0; i < 3; ++i) {
    Item p = Item::token();
    p.seq = static_cast<std::uint64_t>(i);
    p.size_bytes = 1000;  // 1 ms serialization each
    link.send(rtm, std::move(p));
  }
  rtm.run();
  ASSERT_EQ(got.size(), 3u);
  // Packet i finishes serializing at (i+1) ms, arrives 5 ms later.
  EXPECT_EQ(got[0], std::make_pair(std::uint64_t{0}, rt::milliseconds(6)));
  EXPECT_EQ(got[1], std::make_pair(std::uint64_t{1}, rt::milliseconds(7)));
  EXPECT_EQ(got[2], std::make_pair(std::uint64_t{2}, rt::milliseconds(8)));
}

TEST(SimLink, DropsWhenQueueOverflows) {
  rt::Runtime rtm;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e3;  // 1 byte/ms: very slow
  cfg.queue_capacity_bytes = 3000;
  SimLink link(cfg);
  const rt::ThreadId rx = rtm.spawn("rx", rt::kPriorityData,
                                    [](rt::Runtime&, rt::Message) {
                                      return rt::CodeResult::kContinue;
                                    });
  link.attach_receiver(rx);
  for (int i = 0; i < 10; ++i) {
    Item p = Item::token();
    p.size_bytes = 1000;
    link.send(rtm, std::move(p));
  }
  EXPECT_GT(link.stats().dropped_congestion, 0u);
  EXPECT_LT(link.stats().delivered_scheduled, 10u);
}

TEST(SimLink, RandomLossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    rt::Runtime rtm;
    LinkConfig cfg;
    cfg.random_loss = 0.5;
    cfg.seed = seed;
    SimLink link(cfg);
    const rt::ThreadId rx = rtm.spawn("rx", rt::kPriorityData,
                                      [](rt::Runtime&, rt::Message) {
                                        return rt::CodeResult::kContinue;
                                      });
    link.attach_receiver(rx);
    for (int i = 0; i < 100; ++i) {
      Item p = Item::token();
      p.size_bytes = 10;
      link.send(rtm, std::move(p));
    }
    return link.stats().dropped_random;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_GT(run(7), 10u);
  EXPECT_LT(run(7), 90u);
}

TEST(SimLink, QueueDepthDrainsOverTime) {
  rt::Runtime rtm;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1 byte/us
  cfg.queue_capacity_bytes = 1 << 20;
  SimLink link(cfg);
  const rt::ThreadId rx = rtm.spawn("rx", rt::kPriorityData,
                                    [](rt::Runtime&, rt::Message) {
                                      return rt::CodeResult::kContinue;
                                    });
  link.attach_receiver(rx);
  for (int i = 0; i < 4; ++i) {
    Item p = Item::token();
    p.size_bytes = 1000;  // 1 ms on the wire each
    link.send(rtm, std::move(p));
  }
  EXPECT_NEAR(static_cast<double>(link.queue_depth_bytes(rtm.now())), 4000.0,
              50.0);
  rtm.run_until(rt::milliseconds(2));
  EXPECT_NEAR(static_cast<double>(link.queue_depth_bytes(rtm.now())), 2000.0,
              50.0);
  rtm.run_until(rt::milliseconds(10));
  EXPECT_EQ(link.queue_depth_bytes(rtm.now()), 0u);
}

TEST(SimLink, JitterCanReorderAndStatsAddUp) {
  rt::Runtime rtm;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.base_latency = rt::milliseconds(5);
  cfg.jitter = rt::milliseconds(20);  // >> inter-send gap: reordering likely
  cfg.seed = 9;
  SimLink link(cfg);
  std::vector<std::uint64_t> order;
  const rt::ThreadId rx = rtm.spawn(
      "rx", rt::kPriorityData, [&](rt::Runtime&, rt::Message m) {
        if (m.type == kMsgNetDeliver) order.push_back(m.get<Item>()->seq);
        return rt::CodeResult::kContinue;
      });
  link.attach_receiver(rx);
  for (int i = 0; i < 50; ++i) {
    Item p = Item::token();
    p.seq = static_cast<std::uint64_t>(i);
    p.size_bytes = 10;
    link.send(rtm, std::move(p));
    rtm.run_until(rtm.now() + rt::milliseconds(1));
  }
  rtm.run_until(rt::seconds(1));
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "20 ms jitter over 1 ms spacing must reorder something";
  EXPECT_EQ(link.stats().sent, 50u);
  EXPECT_EQ(link.stats().delivered_scheduled, 50u);
  EXPECT_EQ(link.stats().dropped_congestion, 0u);
}

TEST(SimLink, SetBandwidthIsSafeAgainstConcurrentSend) {
  // The adaptation experiments mutate the bandwidth live from another
  // kernel thread while the link's runtime serializes packets. The field
  // is atomic; under TSan this test is the proof.
  rt::Runtime rtm;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  SimLink link(cfg);
  const rt::ThreadId rx = rtm.spawn("rx", rt::kPriorityData,
                                    [](rt::Runtime&, rt::Message) {
                                      return rt::CodeResult::kContinue;
                                    });
  link.attach_receiver(rx);

  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    double bw = 1e6;
    while (!stop.load(std::memory_order_relaxed)) {
      link.set_bandwidth(bw);
      bw = bw >= 64e6 ? 1e6 : bw * 2;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    Item p = Item::token();
    p.size_bytes = 100;
    link.send(rtm, std::move(p));
    const double bw = link.bandwidth();
    EXPECT_GE(bw, 1e6);  // never a torn read
    EXPECT_LE(bw, 64e6);
  }
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  rtm.run();
}

// ---------- netpipe in a pipeline --------------------------------------------------

std::vector<std::uint8_t> encode_string(const Item& x) {
  const auto* s = x.payload<std::string>();
  return s != nullptr ? std::vector<std::uint8_t>(s->begin(), s->end())
                      : std::vector<std::uint8_t>{};
}

Item decode_string(const std::vector<std::uint8_t>& b) {
  return Item::of<std::string>(std::string(b.begin(), b.end()));
}

struct NetPipeline {
  rt::Runtime rtm;
  std::vector<Item> payloads;
  VectorSource src;
  ClockedPump pump;
  MarshalFilter marshal;
  SimLink link;
  NetSender tx;
  NetReceiver rx;
  UnmarshalFilter unmarshal;
  FreeRunningPump pump2;  // unused unless needed
  CollectorSink sink;
  Pipeline pipe;

  explicit NetPipeline(LinkConfig cfg, int n = 10)
      : payloads([n] {
          std::vector<Item> v;
          for (int i = 0; i < n; ++i) {
            Item x = Item::of<std::string>("msg" + std::to_string(i));
            x.seq = static_cast<std::uint64_t>(i);
            v.push_back(std::move(x));
          }
          return v;
        }()),
        src("src", payloads),
        pump("pump", 100.0),
        marshal("marshal", encode_string, "text"),
        link(cfg),
        tx("tx", link, "producer-node"),
        rx("rx", link, "consumer-node"),
        unmarshal("unmarshal", decode_string, "text"),
        pump2("pump2"),
        sink("sink") {
    pipe.connect(src, 0, pump, 0);
    pipe.connect(pump, 0, marshal, 0);
    pipe.connect(marshal, 0, tx, 0);
    pipe.connect(rx, 0, unmarshal, 0);
    pipe.connect(unmarshal, 0, sink, 0);
  }
};

TEST(NetPipe, EndToEndDeliveryAcrossTheLink) {
  LinkConfig cfg;
  cfg.base_latency = rt::milliseconds(10);
  NetPipeline n(cfg);
  Realization real(n.rtm, n.pipe);
  real.start();
  n.rtm.run();
  ASSERT_EQ(n.sink.count(), 10u);
  EXPECT_TRUE(n.sink.eos_seen()) << "EOS must cross the netpipe";
  EXPECT_EQ(*n.sink.arrivals()[3].item.payload<std::string>(), "msg3");
  // Latency: arrival is at least base_latency after the 100 Hz send slot.
  EXPECT_GE(n.sink.arrivals()[0].at, rt::milliseconds(10));
}

TEST(NetPipe, TwoSectionsTwoThreads) {
  NetPipeline n(LinkConfig{});
  Realization real(n.rtm, n.pipe);
  // producer side: pump; consumer side: receiver driver. No coroutines.
  EXPECT_EQ(real.thread_count(), 2u);
}

TEST(NetPipe, LocationPropertyChangesOnlyAtTheNetpipe) {
  NetPipeline n(LinkConfig{});
  Plan p = plan(n.pipe);
  const Edge* into_sink = n.pipe.edge_into(n.sink, 0);
  ASSERT_NE(into_sink, nullptr);
  EXPECT_EQ(p.edge_spec.at(into_sink).get<std::string>(props::kLocation),
            "consumer-node");
  const Edge* into_tx = n.pipe.edge_into(n.tx, 0);
  // Producer-side flow carries no (or a different) location property.
  EXPECT_NE(p.edge_spec.at(into_tx).get<std::string>(props::kLocation),
            std::string("consumer-node"));
}

TEST(NetPipe, CongestionDropsAreArbitrary) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 2e3;  // far below the offered load
  cfg.queue_capacity_bytes = 100;
  NetPipeline n(cfg, 50);
  Realization real(n.rtm, n.pipe);
  real.start();
  n.rtm.run();
  EXPECT_GT(n.link.stats().dropped_congestion, 0u);
  EXPECT_LT(n.sink.count(), 50u);
  EXPECT_TRUE(n.sink.eos_seen());
}

// ---------- nodes and the remote protocol ------------------------------------------

TEST(Nodes, RemoteTypespecQueryMarshalsAcrossAgent) {
  rt::Runtime rtm;
  Node node(rtm, "video-server");
  class OfferingSource : public CountingSource {
   public:
    OfferingSource() : CountingSource("cam0", 10) {}
    Typespec output_offer(int) const override {
      return Typespec{{props::kItemType, std::string("video")},
                      {props::kFrameRate, Range{5, 30}}};
    }
  };
  node.adopt(std::make_unique<OfferingSource>());

  const Typespec spec = remote_typespec_query(rtm, node, "cam0", 0);
  EXPECT_EQ(spec.get<std::string>(props::kItemType), "video");
  EXPECT_EQ(spec.get<Range>(props::kFrameRate), (Range{5, 30}));
}

TEST(Nodes, QueryForUnknownComponentFails) {
  rt::Runtime rtm;
  Node node(rtm, "n");
  EXPECT_THROW((void)remote_typespec_query(rtm, node, "ghost", 0),
               RemoteError);
}

TEST(Nodes, RemoteCreateThroughFactory) {
  rt::Runtime rtm;
  Node node(rtm, "edge");
  node.register_factory(
      "counting-source",
      [](const std::string& name, const std::string& args) {
        return std::make_unique<CountingSource>(
            name, static_cast<std::uint64_t>(std::stoul(args)));
      });
  const std::string made =
      remote_create(rtm, node, "counting-source", "src-a", "25");
  EXPECT_EQ(made, "src-a");
  ASSERT_NE(node.lookup("src-a"), nullptr);
  EXPECT_EQ(node.lookup("src-a")->name(), "src-a");
  EXPECT_THROW((void)remote_create(rtm, node, "no-such-type", "x", ""),
               RemoteError);
}

TEST(Nodes, RemoteQueryFromInsideAPipelineThread) {
  // The protocol also works mid-pipeline (a binding protocol would do this).
  rt::Runtime rtm;
  Node node(rtm, "server");
  node.adopt(std::make_unique<CountingSource>("remote-src", 5));
  Typespec got;
  const rt::ThreadId t = rtm.spawn(
      "binder", rt::kPriorityData, [&](rt::Runtime& r, rt::Message) {
        got = remote_typespec_query(r, node, "remote-src", 0);
        return rt::CodeResult::kTerminate;
      });
  rtm.send(t, rt::Message{0, rt::MsgClass::kData});
  rtm.run();
  EXPECT_TRUE(got.empty());  // CountingSource offers no properties
}

}  // namespace
}  // namespace infopipe::net
