// End-to-end execution tests for realized pipelines: the §3.3 claim that a
// component's activity style is transparent — any style, used in push or
// pull mode, produces the identical external behaviour — plus lifecycle,
// buffering and end-of-stream semantics.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

Item sum2(Item a, Item b) {
  Item y = Item::token();
  y.seq = a.seq;                     // keep the first fragment's seq
  y.kind = static_cast<int>(a.seq + b.seq);  // carries the combined value
  return y;
}

std::vector<std::uint64_t> iota_seqs(std::uint64_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ---------- style transparency: the defragmenter in every style/mode ----------

enum class StyleKind { kConsumer, kProducer, kActive };
enum class Position { kPushSide, kPullSide };

struct StyleCase {
  StyleKind style;
  Position pos;
  int expected_threads;
};

class StyleTransparency
    : public ::testing::TestWithParam<StyleCase> {};

std::unique_ptr<Component> make_defrag(StyleKind k) {
  switch (k) {
    case StyleKind::kConsumer:
      return std::make_unique<DefragmenterConsumer>("defrag", sum2);
    case StyleKind::kProducer:
      return std::make_unique<DefragmenterProducer>("defrag", sum2);
    case StyleKind::kActive:
      return std::make_unique<DefragmenterActive>("defrag", sum2);
  }
  return nullptr;
}

TEST_P(StyleTransparency, DefragmenterBehavesIdentically) {
  const StyleCase& c = GetParam();
  rt::Runtime rtm;
  CountingSource src("src", 10);  // seq 0..9 -> pairs (0,1),(2,3),...
  CollectorSink sink("sink");
  FreeRunningPump pump("pump");
  std::unique_ptr<Component> defrag = make_defrag(c.style);

  Pipeline p;
  if (c.pos == Position::kPushSide) {
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, *defrag, 0);
    p.connect(*defrag, 0, sink, 0);
  } else {
    p.connect(src, 0, *defrag, 0);
    p.connect(*defrag, 0, pump, 0);
    p.connect(pump, 0, sink, 0);
  }
  Realization real(rtm, p);
  EXPECT_EQ(static_cast<int>(real.thread_count()), c.expected_threads);

  real.start();
  rtm.run();

  // External behaviour is identical in every style and mode: 5 outputs whose
  // kind fields are the pairwise sums 1, 5, 9, 13, 17.
  ASSERT_EQ(sink.count(), 5u) << "style/mode changed the external behaviour";
  std::vector<int> kinds;
  for (const auto& a : sink.arrivals()) kinds.push_back(a.item.kind);
  EXPECT_EQ(kinds, (std::vector<int>{1, 5, 9, 13, 17}));
  EXPECT_TRUE(sink.eos_seen());
  EXPECT_FALSE(pump.running());  // pump stopped itself at end-of-stream
}

INSTANTIATE_TEST_SUITE_P(
    AllStylesBothModes, StyleTransparency,
    ::testing::Values(
        // Figure 4a: passive consumer, native push mode, direct call.
        StyleCase{StyleKind::kConsumer, Position::kPushSide, 1},
        // Figure 8b: consumer adapted to pull mode via a coroutine.
        StyleCase{StyleKind::kConsumer, Position::kPullSide, 2},
        // Figure 8a: producer adapted to push mode via a coroutine.
        StyleCase{StyleKind::kProducer, Position::kPushSide, 2},
        // Figure 4b: passive producer, native pull mode, direct call.
        StyleCase{StyleKind::kProducer, Position::kPullSide, 1},
        // Figure 6a/6b: active object, coroutine in either mode.
        StyleCase{StyleKind::kActive, Position::kPushSide, 2},
        StyleCase{StyleKind::kActive, Position::kPullSide, 2}),
    [](const ::testing::TestParamInfo<StyleCase>& info) {
      std::string s;
      switch (info.param.style) {
        case StyleKind::kConsumer: s = "Consumer"; break;
        case StyleKind::kProducer: s = "Producer"; break;
        case StyleKind::kActive: s = "Active"; break;
      }
      s += info.param.pos == Position::kPushSide ? "PushMode" : "PullMode";
      return s;
    });

// The fragmenter duals: one input becomes two outputs in either style/mode.
TEST(StyleTransparencyFragmenter, ConsumerAndProducerMatch) {
  auto split = [](Item x) {
    Item a = Item::token(static_cast<int>(x.seq) * 2);
    Item b = Item::token(static_cast<int>(x.seq) * 2 + 1);
    return std::make_pair(a, b);
  };
  for (int variant = 0; variant < 4; ++variant) {
    rt::Runtime rtm;
    CountingSource src("src", 5);
    CollectorSink sink("sink");
    FreeRunningPump pump("pump");
    std::unique_ptr<Component> frag;
    if (variant / 2 == 0) {
      frag = std::make_unique<FragmenterConsumer>("frag", split);
    } else {
      frag = std::make_unique<FragmenterProducer>("frag", split);
    }
    Pipeline p;
    if (variant % 2 == 0) {  // push side
      p.connect(src, 0, pump, 0);
      p.connect(pump, 0, *frag, 0);
      p.connect(*frag, 0, sink, 0);
    } else {  // pull side
      p.connect(src, 0, *frag, 0);
      p.connect(*frag, 0, pump, 0);
      p.connect(pump, 0, sink, 0);
    }
    Realization real(rtm, p);
    real.start();
    rtm.run();
    ASSERT_EQ(sink.count(), 10u) << "variant " << variant;
    std::vector<int> kinds;
    for (const auto& a : sink.arrivals()) kinds.push_back(a.item.kind);
    EXPECT_EQ(kinds, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}))
        << "variant " << variant;
  }
}

TEST(Exec, FlushMayEmitLeftoversBeforeEos) {
  // A consumer with inter-item state can emit its leftover through the
  // normal output path when the stream ends — the glue calls flush() before
  // forwarding the EOS marker.
  class EmittingDefrag : public Consumer {
   public:
    EmittingDefrag() : Consumer("emit-defrag") {}

   protected:
    void push(Item x) override {
      if (saved_) {
        Item y = Item::token(saved_->kind + x.kind);
        saved_.reset();
        push_next(std::move(y));
      } else {
        saved_ = std::move(x);
      }
    }
    void flush() override {
      if (saved_) {
        Item y = std::move(*saved_);
        y.kind += 1000;  // mark it as a flushed leftover
        saved_.reset();
        push_next(std::move(y));
      }
    }

   private:
    std::optional<Item> saved_;
  };

  rt::Runtime rtm;
  std::vector<Item> items;
  for (int v : {1, 2, 3}) items.push_back(Item::token(v));  // odd count
  VectorSource src("src", std::move(items));
  FreeRunningPump pump("pump");
  EmittingDefrag defrag;
  CollectorSink sink("sink");
  auto ch = src >> pump >> defrag >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(sink.arrivals()[0].item.kind, 3);     // 1+2
  EXPECT_EQ(sink.arrivals()[1].item.kind, 1003);  // flushed leftover 3
  EXPECT_TRUE(sink.eos_seen()) << "EOS still arrives after the flush output";
}

TEST(Exec, RoutingSwitchCountsOutOfRangeDrops) {
  class OddDropper : public RoutingSwitch {
   public:
    OddDropper() : RoutingSwitch("odd-dropper", 1) {}

   protected:
    int select(const Item& x) override {
      return x.seq % 2 == 0 ? 0 : -1;  // odd items go nowhere
    }
  };
  rt::Runtime rtm;
  CountingSource src("src", 10);
  FreeRunningPump pump("pump");
  OddDropper sw;
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, sw, 0);
  p.connect(sw, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 5u);
  EXPECT_EQ(sw.dropped(), 5u);
}

TEST(Exec, PumpNilForwardPolicyDeliversNils) {
  // NilPolicy::kForward: the driver passes nil items downstream (the audio
  // device uses this to count underruns).
  class NilCountingSink : public PassiveSink {
   public:
    NilCountingSink() : PassiveSink("nilsink") {}
    int data = 0;

   protected:
    void consume(Item x) override {
      if (x.is_data()) ++data;
    }
  };
  rt::Runtime rtm;
  CountingSource src("src", 3);
  ClockedPump fill("fill", 10.0);  // slow producer
  Buffer buf("buf", 4, FullPolicy::kBlock, EmptyPolicy::kNil);
  ClockedPump drain("drain", 100.0);
  drain.set_nil_policy(Driver::NilPolicy::kForward);
  NilCountingSink sink;
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(500));
  EXPECT_EQ(sink.data, 3);
  // Forwarded nils were filtered out by the sink glue (non-data items never
  // reach consume() of passive sinks) but the pump did cycle on them.
  EXPECT_GT(drain.items_pumped(), 3u);
  real.shutdown();
  rtm.run();
}

// ---------- longer mixed chains -------------------------------------------------

TEST(Exec, MixedStyleChainAcrossBufferAndTwoPumps) {
  rt::Runtime rtm;
  CountingSource src("src", 20);
  DefragmenterConsumer defrag("defrag", sum2);  // pull side -> coroutine
  FreeRunningPump pump1("pump1");
  LambdaFunction twice("twice", [](Item x) {
    x.kind *= 2;
    return x;
  });
  Buffer buf("buf", 4);
  DefragmenterActive defrag2("defrag2", sum2);  // active -> coroutine
  FreeRunningPump pump2("pump2");
  CollectorSink sink("sink");

  auto ch = src >> defrag >> pump1 >> twice >> buf >> defrag2 >> pump2 >> sink;
  Realization real(rtm, ch.pipeline());
  // section 1: pump1 + defrag coroutine; section 2: pump2 + defrag2
  // coroutine => 4 threads.
  EXPECT_EQ(real.thread_count(), 4u);
  real.start();
  rtm.run();
  // 20 -> defrag -> 10 -> buf -> defrag2 -> 5 items.
  ASSERT_EQ(sink.count(), 5u);
  EXPECT_TRUE(sink.eos_seen());
}

TEST(Exec, DeepFunctionChainSingleThread) {
  rt::Runtime rtm;
  CountingSource src("src", 50);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  std::vector<std::unique_ptr<LambdaFunction>> fns;
  Pipeline p;
  p.connect(src, 0, pump, 0);
  Component* prev = &pump;
  for (int i = 0; i < 10; ++i) {
    fns.push_back(std::make_unique<LambdaFunction>(
        "f" + std::to_string(i), [](Item x) {
          ++x.kind;
          return x;
        }));
    p.connect(*prev, 0, *fns.back(), 0);
    prev = fns.back().get();
  }
  p.connect(*prev, 0, sink, 0);
  Realization real(rtm, p);
  EXPECT_EQ(real.thread_count(), 1u);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 50u);
  for (const auto& a : sink.arrivals()) EXPECT_EQ(a.item.kind, 10);
}

// ---------- buffer policies --------------------------------------------------------

TEST(BufferPolicy, BlockingBufferDeliversEverything) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 3, FullPolicy::kBlock, EmptyPolicy::kBlock);
  FreeRunningPump drain("drain");
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 100u);
  EXPECT_EQ(sink.seqs(), iota_seqs(100));
  EXPECT_EQ(buf.stats().drops, 0u);
  EXPECT_GT(buf.stats().put_blocks + buf.stats().take_blocks, 0u)
      << "a capacity-3 buffer between free-running pumps must block";
  EXPECT_LE(buf.stats().max_fill, 3u);
}

TEST(BufferPolicy, DropNewestLosesItemsUnderOverload) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  // Fast producer, slow consumer: producer at 1000 Hz, consumer at 100 Hz.
  ClockedPump fill("fill", 1000.0);
  Buffer buf("buf", 5, FullPolicy::kDropNewest, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 100.0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(2));
  EXPECT_GT(buf.stats().drops, 0u);
  // Drop-newest keeps the oldest items: arrivals are in order without gaps
  // at the front.
  ASSERT_GE(sink.count(), 5u);
  EXPECT_EQ(sink.arrivals()[0].item.seq, 0u);
  EXPECT_EQ(sink.arrivals()[4].item.seq, 4u);
}

TEST(BufferPolicy, DropOldestKeepsFreshest) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  ClockedPump fill("fill", 1000.0);
  Buffer buf("buf", 5, FullPolicy::kDropOldest, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 10.0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(3));
  EXPECT_GT(buf.stats().drops, 0u);
  // Under drop-oldest, late arrivals should include high sequence numbers.
  ASSERT_FALSE(sink.arrivals().empty());
  EXPECT_GT(sink.arrivals().back().item.seq, 50u);
}

TEST(BufferPolicy, NilPolicyReturnsNilAndPumpSkips) {
  rt::Runtime rtm;
  CountingSource src("src", 3);
  ClockedPump fill("fill", 10.0);  // slow producer
  Buffer buf("buf", 5, FullPolicy::kBlock, EmptyPolicy::kNil);
  ClockedPump drain("drain", 1000.0);  // fast consumer: mostly sees empty
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(1));
  EXPECT_EQ(sink.count(), 3u);  // nils skipped, all real items arrive
  EXPECT_GT(buf.stats().nil_returns, 0u);
}

// ---------- clocked pump timing -------------------------------------------------

TEST(Timing, ClockedPumpPacesDeliveries) {
  rt::Runtime rtm;
  CountingSource src("src", 10);
  ClockedPump pump("pump", 100.0);  // 10 ms period
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 10u);
  for (std::size_t i = 1; i < sink.arrivals().size(); ++i) {
    const rt::Time dt = sink.arrivals()[i].at - sink.arrivals()[i - 1].at;
    EXPECT_EQ(dt, rt::milliseconds(10)) << "cycle " << i;
  }
}

TEST(Timing, OverloadedClockedPumpCountsDeadlineMisses) {
  rt::Runtime rtm;
  CountingSource src("src", 50);
  ClockedPump pump("pump", 100.0);       // 10 ms period...
  SimulatedWork work("work", rt::milliseconds(15));  // ...15 ms per item
  CollectorSink sink("sink");
  auto ch = src >> pump >> work >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 50u);
  // Every cycle after the first runs behind schedule.
  EXPECT_GE(pump.deadline_misses(), 40u);

  // A pump with headroom misses nothing.
  rt::Runtime rtm2;
  CountingSource src2("src2", 50);
  ClockedPump pump2("pump2", 100.0);
  SimulatedWork light("light", rt::milliseconds(2));
  CollectorSink sink2("sink2");
  auto ch2 = src2 >> pump2 >> light >> sink2;
  Realization real2(rtm2, ch2.pipeline());
  real2.start();
  rtm2.run();
  EXPECT_EQ(pump2.deadline_misses(), 0u);
}

TEST(Timing, EosStopsClockedPumpAndQuiescesRuntime) {
  rt::Runtime rtm;
  CountingSource src("src", 3);
  ClockedPump pump("pump", 1000.0);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();  // must return (quiescent) shortly after EOS
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_TRUE(sink.eos_seen());
  EXPECT_TRUE(real.finished());
}

// ---------- lifecycle: stop / restart / shutdown ----------------------------------

TEST(Lifecycle, StopPausesAndRestartResumes) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  ClockedPump pump("pump", 100.0);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(95));  // ~10 items
  const std::size_t first_batch = sink.count();
  EXPECT_GE(first_batch, 9u);
  real.stop();
  rtm.run_until(rt::milliseconds(500));
  const std::size_t after_stop = sink.count();
  EXPECT_LE(after_stop, first_batch + 1) << "items kept flowing after STOP";
  real.start();
  rtm.run_until(rt::milliseconds(1000));
  EXPECT_GT(sink.count(), after_stop + 10) << "restart did not resume";
}

TEST(Lifecycle, ShutdownTerminatesAllThreads) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  DefragmenterActive defrag("defrag", sum2);  // coroutine involved
  FreeRunningPump pump("pump");
  Buffer buf("buf", 2);
  FreeRunningPump pump2("pump2");
  CollectorSink sink("sink");
  auto ch = src >> defrag >> pump >> buf >> pump2 >> sink;
  Realization real(rtm, ch.pipeline());
  EXPECT_EQ(rtm.live_threads(), real.thread_count());
  real.start();
  rtm.run_until(rt::milliseconds(1));
  real.shutdown();
  rtm.run();
  EXPECT_EQ(rtm.live_threads(), 0u);
}

TEST(Lifecycle, ComponentsReusableAfterRealizationDestroyed) {
  rt::Runtime rtm;
  CountingSource src("src", 4);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  {
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    EXPECT_EQ(sink.count(), 4u);
    real.shutdown();
    rtm.run();
  }
  // Same components, fresh realization.
  sink.clear();
  src.reset();
  Realization real2(rtm, ch.pipeline());
  real2.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 4u);
}

// ---------- tees ---------------------------------------------------------------------

TEST(Tees, MulticastSharesPayloadAcrossBranches) {
  rt::Runtime rtm;
  VectorSource src("src", [] {
    std::vector<Item> v;
    for (int i = 0; i < 6; ++i) {
      Item x = Item::of<std::string>("payload-" + std::to_string(i));
      x.seq = static_cast<std::uint64_t>(i);
      v.push_back(std::move(x));
    }
    return v;
  }());
  FreeRunningPump pump("pump");
  MulticastTee tee("tee", 2);
  CollectorSink a("a");
  CollectorSink b("b");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, tee, 0);
  p.connect(tee, 0, a, 0);
  p.connect(tee, 1, b, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(a.count(), 6u);
  ASSERT_EQ(b.count(), 6u);
  EXPECT_TRUE(a.eos_seen());
  EXPECT_TRUE(b.eos_seen());
  // Copies share one payload (no deep copy in the tee).
  EXPECT_EQ(a.arrivals()[0].item.payload<std::string>(),
            b.arrivals()[0].item.payload<std::string>());
}

class EvenOddSwitch : public RoutingSwitch {
 public:
  EvenOddSwitch() : RoutingSwitch("evenodd", 2) {}

 protected:
  int select(const Item& x) override {
    return static_cast<int>(x.seq % 2);
  }
};

TEST(Tees, RoutingSwitchPartitionsFlow) {
  rt::Runtime rtm;
  CountingSource src("src", 10);
  FreeRunningPump pump("pump");
  EvenOddSwitch sw;
  CollectorSink even("even");
  CollectorSink odd("odd");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, sw, 0);
  p.connect(sw, 0, even, 0);
  p.connect(sw, 1, odd, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(even.seqs(), (std::vector<std::uint64_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(odd.seqs(), (std::vector<std::uint64_t>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(even.eos_seen());
  EXPECT_TRUE(odd.eos_seen());
}

TEST(Tees, MergeInterleavesAndForwardsEosOnceAllEnd) {
  rt::Runtime rtm;
  CountingSource s1("s1", 5);
  CountingSource s2("s2", 7);
  ClockedPump p1("p1", 100.0);
  ClockedPump p2("p2", 100.0);
  MergeTee merge("merge", 2);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p1, 0, merge, 0);
  p.connect(p2, 0, merge, 1);
  p.connect(merge, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 12u);
  EXPECT_TRUE(sink.eos_seen());
}

class TakeFirst : public CombineTee {
 public:
  TakeFirst() : CombineTee("mix", 2) {}

 protected:
  Item combine(std::vector<Item> xs) override {
    Item y = Item::token();
    y.kind = static_cast<int>(xs[0].seq + xs[1].seq);
    return y;
  }
};

TEST(Tees, CombinePullsOneFromEachInput) {
  rt::Runtime rtm;
  CountingSource s1("s1", 5);
  CountingSource s2("s2", 5);
  TakeFirst mix;
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(s1, 0, mix, 0);
  p.connect(s2, 0, mix, 1);
  p.connect(mix, 0, pump, 0);
  p.connect(pump, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 5u);
  std::vector<int> kinds;
  for (const auto& a : sink.arrivals()) kinds.push_back(a.item.kind);
  EXPECT_EQ(kinds, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Tees, BalancingSwitchServesWhoeverPulls) {
  rt::Runtime rtm;
  CountingSource src("src", 20);
  BalancingSwitch sw("sw", 2);
  ClockedPump p1("p1", 100.0);
  ClockedPump p2("p2", 100.0);
  CollectorSink s1("s1");
  CollectorSink s2("s2");
  Pipeline p;
  p.connect(src, 0, sw, 0);
  p.connect(sw, 0, p1, 0);
  p.connect(sw, 1, p2, 0);
  p.connect(p1, 0, s1, 0);
  p.connect(p2, 0, s2, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  // Both consumers got items; together they saw the whole flow exactly once.
  EXPECT_GT(s1.count(), 0u);
  EXPECT_GT(s2.count(), 0u);
  std::vector<std::uint64_t> all = s1.seqs();
  const std::vector<std::uint64_t> other = s2.seqs();
  all.insert(all.end(), other.begin(), other.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, iota_seqs(20));
}

}  // namespace
}  // namespace infopipe
