// ip_balance tests: live section migration and load rebalancing.
//
// The heart of the suite is the deterministic lockstep migration test: the
// same finite flow is run twice under manual shards and virtual clocks —
// once undisturbed, once with sections migrated back and forth mid-flow —
// and the sink must collect the exact same item sequence, bit for bit. That
// is the paper's thread-transparency claim made executable: a section's
// placement is invisible to the flow. The threaded tests then run the same
// machinery under real kernel threads (and TSan, in the check.sh stage) to
// shake out the concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "balance/accountant.hpp"
#include "balance/migration.hpp"
#include "balance/policy.hpp"
#include "balance/rebalancer.hpp"
#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "shard/sharded_realization.hpp"
#include "shard/topology.hpp"

namespace infopipe::balance {
namespace {

using namespace std::chrono_literals;

shard::ShardGroup::GroupOptions manual_opts() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  return opt;
}

/// Pins config().elastic for the autoscaling tests (see elastic_test.cpp
/// for the kill switch itself).
class ElasticGuard {
 public:
  explicit ElasticGuard(bool on) : prev_(config().elastic) {
    config().elastic = on;
  }
  ~ElasticGuard() { config().elastic = prev_; }

 private:
  bool prev_;
};

/// Function stage whose section may never migrate (stands in for a
/// device-bound component).
class PinnedStage : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;
  [[nodiscard]] bool migratable() const override { return false; }

 protected:
  Item convert(Item x) override { return x; }
};

// --- deterministic lockstep migration ---------------------------------------

struct LockstepResult {
  std::vector<std::uint64_t> seqs;
  bool eos = false;
  std::vector<shard::MigrationOutcome> outcomes;
};

/// Three sections over two manual shards, 1000 items at 200 Hz. When
/// `migrate` is set, section 1 is moved to the other shard at t = 2 s and
/// moved back at t = 4 s, mid-flow, with items queued in the cut storage.
LockstepResult run_lockstep(bool migrate) {
  shard::ShardGroup group(2, manual_opts());

  constexpr std::uint64_t kN = 1000;
  CountingSource src("src", kN);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  EXPECT_EQ(sr.section_count(), 3u);
  EXPECT_TRUE(sr.section_migratable(1));

  LockstepResult r;
  const int home = sr.shard_of_section(1);
  const int away = 1 - home;

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(8);
       t += rt::milliseconds(100)) {
    group.step_until(t);
    if (migrate && t == rt::seconds(2)) {
      r.outcomes.push_back(sr.migrate_section(1, away));
      EXPECT_EQ(sr.shard_of_section(1), away);
    }
    if (migrate && t == rt::seconds(4)) {
      r.outcomes.push_back(sr.migrate_section(1, home));
      EXPECT_EQ(sr.shard_of_section(1), home);
    }
  }
  EXPECT_TRUE(sr.finished());
  r.seqs = sink.seqs();
  r.eos = sink.eos_seen();
  return r;
}

TEST(Migration, LockstepMoveIsLossFreeAndBitIdentical) {
  const LockstepResult plain = run_lockstep(false);
  const LockstepResult moved = run_lockstep(true);

  // Zero loss, zero duplication, order preserved — in both runs.
  ASSERT_EQ(plain.seqs.size(), 1000u);
  ASSERT_EQ(moved.seqs.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(moved.seqs[i], i) << "at " << i;
  }
  // The migrated run's output is bit-identical to the undisturbed run.
  EXPECT_EQ(moved.seqs, plain.seqs);
  EXPECT_TRUE(plain.eos);
  EXPECT_TRUE(moved.eos);

  ASSERT_EQ(moved.outcomes.size(), 2u);
  EXPECT_EQ(moved.outcomes[0].section, 1u);
  EXPECT_NE(moved.outcomes[0].from, moved.outcomes[0].to);
  // Returning home reverses the first move's cut surgery.
  EXPECT_EQ(moved.outcomes[0].cuts_created, moved.outcomes[1].cuts_collapsed);
  EXPECT_EQ(moved.outcomes[0].cuts_collapsed, moved.outcomes[1].cuts_created);
}

TEST(Migration, CollapsesAndRecreatesCutsAcrossThreeShards) {
  shard::ShardGroup group(3, manual_opts());

  constexpr std::uint64_t kN = 600;
  CountingSource src("src", kN);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  ASSERT_EQ(sr.section_count(), 3u);
  // One section per shard: both buffers are cuts.
  ASSERT_EQ(sr.live_channels().size(), 2u);
  const int s0 = sr.shard_of_section(0);
  const int s1 = sr.shard_of_section(1);

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }

  // Section 1 joins section 0: the b1 cut collapses back into a plain
  // buffer, the b2 cut persists with its producer side rebound.
  const shard::MigrationOutcome out1 = sr.migrate_section(1, s0);
  EXPECT_EQ(out1.cuts_collapsed, 1u);
  EXPECT_EQ(out1.cuts_created, 0u);
  EXPECT_EQ(out1.cuts_rebound, 1u);
  EXPECT_EQ(sr.live_channels().size(), 1u);
  EXPECT_EQ(sr.migrations(), 1u);

  for (rt::Time t = rt::seconds(1); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }

  // And leaves again: b1 splits into a fresh channel.
  const shard::MigrationOutcome out2 = sr.migrate_section(1, s1);
  EXPECT_EQ(out2.cuts_collapsed, 0u);
  EXPECT_EQ(out2.cuts_created, 1u);
  EXPECT_EQ(out2.cuts_rebound, 1u);
  EXPECT_EQ(sr.live_channels().size(), 2u);

  for (rt::Time t = rt::seconds(2); t <= rt::seconds(8);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_TRUE(sr.finished());
  const std::vector<std::uint64_t> seqs = sink.seqs();
  ASSERT_EQ(seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(seqs[i], i);
  EXPECT_TRUE(sink.eos_seen());
}

// --- abandoned / interrupted moves -------------------------------------------

TEST(Migration, UserStopDuringMoveIsNotUndoneByResume) {
  shard::ShardGroup group(2, manual_opts());

  CountingSource src("src", 100000);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  const int home = sr.shard_of_section(1);
  const int away = 1 - home;

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }

  // A user stop() lands in the middle of the move: resume() must honour it
  // instead of restarting the affected shards from state latched before the
  // quiesce — that would leave part of the flow running against the stop.
  {
    shard::ShardedRealization::Migration m = sr.begin_migration(1, away);
    m.quiesce(std::chrono::milliseconds(1000));
    sr.stop();
    m.transfer();
    m.resume();
  }
  EXPECT_EQ(sr.shard_of_section(1), away);

  group.step_until(rt::seconds(2));
  EXPECT_TRUE(sr.finished());
  const std::size_t at_stop = sink.seqs().size();
  group.step_until(rt::seconds(3));
  EXPECT_EQ(sink.seqs().size(), at_stop);  // nothing kept flowing

  // start() resumes the whole flow in the new placement.
  sr.start();
  for (rt::Time t = rt::seconds(3); t <= rt::seconds(5);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_GT(sink.seqs().size(), at_stop);
}

TEST(Migration, QuiesceTimeoutRestartsTheFlow) {
  constexpr std::uint64_t kN = 30000;
  CountingSource src("src", kN);
  FreeRunningPump p1("p1");
  Buffer b1("b1", 16);
  FreeRunningPump p2("p2");
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();

  // A hopeless deadline: quiesce() posts the stops and then (almost
  // certainly) throws before the shards have parked. The destructor must
  // restart them even though the migration never reached phase 1; if the
  // shards happened to park in time, the abandoned phase-1 move restarts
  // them all the same. Either way the finite flow must still complete.
  try {
    shard::ShardedRealization::Migration m =
        sr.begin_migration(1, 1 - sr.shard_of_section(1));
    m.quiesce(std::chrono::milliseconds(0));
  } catch (const rt::RuntimeError&) {
  }

  ASSERT_TRUE(sr.wait_finished(60000ms));
  group.stop();  // joins host threads: direct reads below are race-free
  const std::vector<std::uint64_t> seqs = sink.seqs();
  ASSERT_EQ(seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(seqs[i], i);
  EXPECT_TRUE(sink.eos_seen());
}

// --- pinning -----------------------------------------------------------------

TEST(Migration, PinnedSectionsAreRejected) {
  shard::ShardGroup group(2, manual_opts());

  CountingSource src("src", 100);
  FreeRunningPump p1("p1");
  Buffer drop("drop", 8, FullPolicy::kDropOldest);  // forces colocation
  FreeRunningPump p2("p2");
  CountingSink sink("sink");
  auto ch = src >> p1 >> drop >> p2 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  // kDropOldest cannot be reproduced over a channel: both adjacent sections
  // are colocated and therefore pinned.
  for (std::size_t s = 0; s < sr.section_count(); ++s) {
    EXPECT_FALSE(sr.section_migratable(s)) << "section " << s;
    EXPECT_THROW((void)sr.begin_migration(s, 1), CompositionError);
  }
}

TEST(Migration, NonMigratableComponentPinsOnlyItsSection) {
  shard::ShardGroup group(2, manual_opts());

  CountingSource src("src", 100);
  PinnedStage dev("dev");  // device-bound stand-in, same section as src
  FreeRunningPump p1("p1");
  Buffer b1("b1", 8);
  FreeRunningPump p2("p2");
  CountingSink sink("sink");
  auto ch = src >> dev >> p1 >> b1 >> p2 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  ASSERT_EQ(sr.section_count(), 2u);
  EXPECT_FALSE(sr.section_migratable(0));
  EXPECT_TRUE(sr.section_migratable(1));
  EXPECT_THROW((void)sr.begin_migration(0, 1), CompositionError);

  // Range and identity errors.
  EXPECT_THROW((void)sr.begin_migration(99, 0), CompositionError);
  EXPECT_THROW((void)sr.begin_migration(1, 7), CompositionError);
  EXPECT_THROW((void)sr.begin_migration(1, sr.shard_of_section(1)),
               CompositionError);
}

// --- accountant + policy -----------------------------------------------------

TEST(Rebalancer, SkewedLoadMigratesTowardTheIdleShard) {
  shard::ShardGroup group(2, manual_opts());

  CountingSource src("src", 100000);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }

  // Load the shard hosting TWO sections (the construction partitioner put
  // sections 0 and 2 together): the target planner offloads exactly one of
  // them toward the idle shard. (The one-section shard reading hot is the
  // placement the planner correctly refuses to churn — no single move can
  // improve a shard whose whole load is one section.)
  const int hot = sr.shard_of_section(0);
  ASSERT_EQ(sr.shard_of_section(2), hot);
  const int cold = 1 - hot;
  Rebalancer rb(sr);
  rb.accountant().note_busy_sample(hot, 0.9);
  rb.accountant().note_busy_sample(cold, 0.1);

  const std::optional<MigrationReport> rep = rb.step();
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->ok()) << rep->error;
  EXPECT_EQ(rep->from, hot);
  EXPECT_EQ(rep->to, cold);
  EXPECT_EQ(sr.shard_of_section(rep->section), cold);
  EXPECT_EQ(rb.migrations_attempted(), 1u);
  EXPECT_GE(rb.steps(), 1u);

  const obs::MetricsSnapshot ms = rb.metrics_snapshot();
  const obs::MetricValue* moved = ms.find("balance.migration.count");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->count, 1u);
  const obs::MetricValue* imb = ms.find("balance.imbalance");
  ASSERT_NE(imb, nullptr);
  EXPECT_NEAR(imb->value, 0.8, 1e-9);

  // The flow keeps running in the new placement.
  for (rt::Time t = rt::seconds(1); t <= rt::seconds(3);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_GT(sink.count(), 100u);
}

TEST(Rebalancer, BalancedLoadHoldsStill) {
  shard::ShardGroup group(2, manual_opts());

  CountingSource src("src", 1000);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  CountingSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  Rebalancer rb(sr);
  rb.accountant().note_busy_sample(0, 0.5);
  rb.accountant().note_busy_sample(1, 0.5);
  EXPECT_FALSE(rb.step().has_value());
  rb.accountant().note_busy_sample(0, 0.55);
  EXPECT_FALSE(rb.step().has_value());  // inside the hysteresis band
  EXPECT_EQ(rb.migrations_attempted(), 0u);
  EXPECT_EQ(sr.migrations(), 0u);
}

TEST(Rebalancer, ElasticScaleUpAndDownWithHysteresis) {
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2, manual_opts());

  constexpr std::uint64_t kN = 1000;
  CountingSource src("src", kN);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();

  Rebalancer::Options o;
  o.policy.min_imbalance = 2.0;  // unreachable: isolate the scaling triggers
  o.elastic.enabled = true;
  o.elastic.scale_up_steps = 3;
  o.elastic.scale_down_steps = 4;
  o.elastic.cooldown_steps = 2;
  o.elastic.min_shards = 2;
  o.elastic.max_shards = 3;
  Rebalancer rb(sr, o);

  rt::Time t = 0;
  const auto tick = [&] {
    t += rt::milliseconds(100);
    group.step_until(t);
  };

  // Saturation held for scale_up_steps consecutive samples grows the group.
  rb.accountant().note_busy_sample(0, 0.9);
  rb.accountant().note_busy_sample(1, 0.9);
  for (int i = 0; i < 3; ++i) {
    (void)rb.step();
    tick();
  }
  EXPECT_EQ(rb.scale_ups(), 1u);
  EXPECT_EQ(group.size(), 3);
  EXPECT_EQ(group.live_count(), 3);

  // The unmeasured new shard drags the live mean below the watermark: no
  // further growth (hysteresis, cooldown and max_shards all agree).
  for (int i = 0; i < 3; ++i) {
    (void)rb.step();
    tick();
  }
  EXPECT_EQ(rb.scale_ups(), 1u);

  // Sustained idleness drains and retires the emptiest shard — exactly
  // once: min_shards floors the topology at two.
  for (int i = 0; i < 14; ++i) {
    for (int s = 0; s < 3; ++s) rb.accountant().note_busy_sample(s, 0.0);
    (void)rb.step();
    tick();
  }
  EXPECT_EQ(rb.scale_downs(), 1u);
  EXPECT_EQ(group.live_count(), 2);
  EXPECT_EQ(group.size(), 3);  // the retired slot is retained

  const obs::MetricsSnapshot ms = rb.metrics_snapshot();
  const obs::MetricValue* ups = ms.find("balance.scale.up");
  ASSERT_NE(ups, nullptr);
  EXPECT_EQ(ups->count, 1u);
  const obs::MetricValue* downs = ms.find("balance.scale.down");
  ASSERT_NE(downs, nullptr);
  EXPECT_EQ(downs->count, 1u);

  // The flow rode through one grow and one shrink untouched.
  while (t < rt::seconds(8)) tick();
  EXPECT_TRUE(sr.finished());
  const std::vector<std::uint64_t> seqs = sink.seqs();
  ASSERT_EQ(seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(seqs[i], i);
}

TEST(Policy, CooldownSuppressesBackToBackDecisions) {
  shard::ShardGroup group(2, manual_opts());
  CountingSource src("src", 1000);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  CountingSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());

  const int hot = sr.shard_of_section(0);
  LoadSnapshot load;
  load.busy.assign(2, 0.1);
  load.busy[static_cast<std::size_t>(hot)] = 0.9;

  RebalancePolicy pol;  // cooldown_steps = 2
  ASSERT_TRUE(pol.decide(load, sr).has_value());
  EXPECT_FALSE(pol.decide(load, sr).has_value());
  EXPECT_FALSE(pol.decide(load, sr).has_value());
  EXPECT_TRUE(pol.decide(load, sr).has_value());
}

// --- topology ----------------------------------------------------------------

TEST(Topology, ParsesCpulistsAndMapsShards) {
  const std::vector<int> cpus =
      shard::Topology::parse_cpulist("0-3,8,10-11");
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_TRUE(shard::Topology::parse_cpulist("").empty());
  EXPECT_TRUE(shard::Topology::parse_cpulist("garbage").empty());

  const shard::Topology flat;
  EXPECT_TRUE(flat.flat());
  EXPECT_EQ(flat.nodes(), 1);
  EXPECT_EQ(flat.node_of_shard(3), 0);

  const shard::Topology two({0, 0, 1, 1});
  EXPECT_FALSE(two.flat());
  EXPECT_EQ(two.nodes(), 2);
  EXPECT_EQ(two.node_of_cpu(2), 1);
  // Shard 5 on 4 CPUs pins to core 1 (5 % 4) -> node 0.
  EXPECT_EQ(two.node_of_shard(5, 4), 0);

  // Whatever this machine looks like, the probe must come back usable.
  const shard::Topology here = shard::Topology::detect();
  EXPECT_GE(here.nodes(), 1);
}

TEST(Policy, PrefersSameNodeTargetsWhenEquallyIdle) {
  shard::ShardGroup group(4, manual_opts());
  CountingSource src("src", 1000);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 16);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 16);
  ClockedPump p3("p3", 200.0);
  Buffer b3("b3", 16);
  ClockedPump p4("p4", 200.0);
  CountingSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> b3 >> p4 >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());
  ASSERT_EQ(sr.section_count(), 4u);

  // Shards 0,1 on node 0; shards 2,3 on node 1. Load the shard hosting some
  // migratable section; here every section is migratable, so pick shard 0's.
  std::size_t sec0 = 0;
  for (std::size_t s = 0; s < sr.section_count(); ++s) {
    if (sr.shard_of_section(s) == 0) sec0 = s;
  }
  ASSERT_EQ(sr.shard_of_section(sec0), 0);

  const shard::Topology topo({0, 0, 1, 1});

  // An equally idle same-node shard (1) beats the cross-node global
  // minimum (2).
  {
    RebalancePolicy pol(PolicyOptions{}, topo);
    LoadSnapshot load;
    load.busy = {0.9, 0.15, 0.1, 0.5};
    const auto d = pol.decide(load, sr);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->from, 0);
    EXPECT_EQ(d->to, 1);
  }
  // With no idle shard on the source's node, the global minimum wins.
  {
    RebalancePolicy pol(PolicyOptions{}, topo);
    LoadSnapshot load;
    load.busy = {0.9, 0.5, 0.1, 0.12};
    const auto d = pol.decide(load, sr);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->from, 0);
    EXPECT_EQ(d->to, 2);
  }
}

// --- threaded stress ---------------------------------------------------------

TEST(Migration, RepeatedMovesUnderLiveLoadLoseNothing) {
  constexpr std::uint64_t kN = 200000;
  CountingSource src("src", kN);
  FreeRunningPump p1("p1");
  Buffer b1("b1", 16);
  FreeRunningPump p2("p2");
  Buffer b2("b2", 16);
  FreeRunningPump p3("p3");
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();

  // Bounce the middle section between the shards while items stream.
  int moves = 0;
  for (int i = 0; i < 6 && !sr.finished(); ++i) {
    std::this_thread::sleep_for(3ms);
    const int from = sr.shard_of_section(1);
    const shard::MigrationOutcome out = sr.migrate_section(1, 1 - from);
    EXPECT_EQ(out.to, 1 - from);
    ++moves;
  }
  EXPECT_GT(moves, 0);
  ASSERT_TRUE(sr.wait_finished(60000ms));
  group.stop();  // joins host threads: direct reads below are race-free

  const std::vector<std::uint64_t> seqs = sink.seqs();
  ASSERT_EQ(seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seqs[i], i) << "at " << i;
  }
  EXPECT_TRUE(sink.eos_seen());
  EXPECT_EQ(sr.migrations(), static_cast<std::uint64_t>(moves));
}

TEST(Rebalancer, AutonomousLoopRunsOnItsOwnThread) {
  constexpr std::uint64_t kN = 50000;
  CountingSource src("src", kN);
  FreeRunningPump p1("p1");
  Buffer b1("b1", 16);
  FreeRunningPump p2("p2");
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());

  Rebalancer::Options opts;
  opts.period = rt::milliseconds(10);
  Rebalancer rb(sr, opts);
  rb.launch();
  EXPECT_TRUE(rb.running());

  sr.start();
  ASSERT_TRUE(sr.wait_finished(60000ms));
  std::this_thread::sleep_for(50ms);  // a few more idle control cycles
  rb.stop();
  EXPECT_FALSE(rb.running());
  group.stop();

  // The control loop sampled on its own kernel thread; whether it migrated
  // depends on scheduling, but the flow must be untouched either way.
  EXPECT_GT(rb.steps(), 3u);
  const obs::MetricsSnapshot ms = rb.metrics_snapshot();
  const obs::MetricValue* steps = ms.find("balance.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->count, rb.steps());

  const std::vector<std::uint64_t> seqs = sink.seqs();
  ASSERT_EQ(seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(seqs[i], i);
  EXPECT_TRUE(sink.eos_seen());
}

}  // namespace
}  // namespace infopipe::balance
