// Restructuring tests: the stop → edit → re-realize workflow the
// microlanguage's name promises ("Composition and Restructuring"), plus
// pipeline-editing primitives, delayed remote control events, and the
// runtime under a real (wall) clock.
#include <gtest/gtest.h>

#include <chrono>

#include "core/infopipes.hpp"
#include "net/control_link.hpp"
#include "net/transport.hpp"

namespace infopipe {
namespace {

TEST(PipelineEdit, DisconnectAndReconnect) {
  CountingSource src("src", 10);
  FreeRunningPump pump("pump");
  IdentityFunction fn("fn");
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, sink, 0);
  EXPECT_TRUE(p.disconnect(pump, 0));
  EXPECT_FALSE(p.disconnect(pump, 0)) << "already disconnected";
  p.connect(pump, 0, fn, 0);
  p.connect(fn, 0, sink, 0);
  EXPECT_EQ(p.edges().size(), 3u);
  rt::Runtime rtm;
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 10u);
}

TEST(PipelineEdit, ReplaceSplicesANewComponent) {
  CountingSource src("src", 6);
  FreeRunningPump pump("pump");
  LambdaFunction add1("add1", [](Item x) {
    ++x.kind;
    return x;
  });
  LambdaFunction add10("add10", [](Item x) {
    x.kind += 10;
    return x;
  });
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, add1, 0);
  p.connect(add1, 0, sink, 0);

  p.replace(add1, add10);
  EXPECT_EQ(p.edges().size(), 3u);

  rt::Runtime rtm;
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 6u);
  EXPECT_EQ(sink.arrivals()[0].item.kind, 10);
}

TEST(PipelineEdit, ReplaceRejectsArityMismatch) {
  CountingSource src("src", 6);
  FreeRunningPump pump("pump");
  IdentityFunction fn("fn");
  MulticastTee tee("tee", 2);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, fn, 0);
  p.connect(fn, 0, sink, 0);
  EXPECT_THROW(p.replace(fn, tee), CompositionError);
}

TEST(Restructure, StopEditRealizeResume) {
  // The full workflow: play, stop, swap the processing stage, resume with a
  // fresh realization — component state (source position, sink contents)
  // carries across.
  rt::Runtime rtm;
  CountingSource src("src", 100);
  ClockedPump pump("pump", 100.0);
  LambdaFunction idf("pass", [](Item x) { return x; });
  LambdaFunction neg("negate", [](Item x) {
    x.kind = -1;
    return x;
  });
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, idf, 0);
  p.connect(idf, 0, sink, 0);
  {
    Realization real(rtm, p);
    real.start();
    rtm.run_until(rt::milliseconds(195));  // ~20 items
    real.stop();
    rtm.run_until(rt::milliseconds(250));
    real.shutdown();
    rtm.run();
  }
  const std::size_t first_phase = sink.count();
  EXPECT_GE(first_phase, 19u);

  p.replace(idf, neg);
  {
    Realization real(rtm, p);
    real.start();
    rtm.run();
    real.shutdown();
    rtm.run();
  }
  EXPECT_EQ(sink.count(), 100u) << "the source resumed where it left off";
  EXPECT_EQ(sink.arrivals().front().item.kind, 0);
  EXPECT_EQ(sink.arrivals().back().item.kind, -1)
      << "items after the restructure went through the new stage";
}

TEST(RemoteControl, EventsCrossTheLinkWithLatency) {
  class Handler : public IdentityFunction {
   public:
    explicit Handler(rt::Time* at) : IdentityFunction("handler"), at_(at) {}
    void handle_event(const Event& e) override {
      if (e.type == kEventUser + 5) *at_ = pipeline_now();
    }

   private:
    rt::Time* at_;
  };

  rt::Runtime rtm;
  rt::Time handled_at = -1;
  CountingSource src("src", 1000000);
  ClockedPump pump("pump", 100.0);
  Handler handler(&handled_at);
  CollectorSink sink("sink");
  auto ch = src >> handler >> pump >> sink;
  Realization real(rtm, ch.pipeline());

  net::LinkConfig lc;
  lc.base_latency = rt::milliseconds(40);
  net::SimLink link(lc);
  net::RemoteControlLink remote(link);

  real.start();
  rtm.run_until(rt::milliseconds(100));
  const rt::Time posted = rtm.now();
  remote.post(real, handler, Event{kEventUser + 5});
  rtm.run_until(rt::milliseconds(300));
  ASSERT_GE(handled_at, 0);
  EXPECT_EQ(handled_at - posted, rt::milliseconds(40))
      << "remote control must arrive after exactly the link latency";
  EXPECT_EQ(remote.posted(), 1u);
  real.shutdown();
  rtm.run();
}

TEST(RealClockSmoke, PipelineRunsOnWallTime) {
  // The same middleware over the monotonic clock: 20 items at 1 kHz must
  // take ~20 ms of real time (generous bounds for CI noise).
  rt::Runtime rtm(std::make_unique<rt::RealClock>());
  CountingSource src("src", 20);
  ClockedPump pump("pump", 1000.0);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  const auto t0 = std::chrono::steady_clock::now();
  real.start();
  rtm.run();
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_EQ(sink.count(), 20u);
  EXPECT_GE(wall_ms, 15);
  EXPECT_LE(wall_ms, 500);
  // Inter-arrival spacing also tracked the real clock: the 19 pump periods
  // cannot complete faster than the clock allows; under CI load they may
  // stretch, so only a generous upper bound is checked.
  const rt::Time span =
      sink.arrivals().back().at - sink.arrivals().front().at;
  EXPECT_GE(static_cast<double>(span) / 1e6, 9.0);
  EXPECT_LE(static_cast<double>(span) / 1e6, 480.0);
}

}  // namespace
}  // namespace infopipe
