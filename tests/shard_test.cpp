// ip_shard tests: the SPSC channel, the shard group, and whole pipelines
// realized across kernel threads.
//
// Everything here runs under RealClock (shards need a common wall clock) and
// is written to be TSan-clean: live shard state is only read through
// ShardGroup::run_on, and direct reads happen only after group.stop() has
// joined the host threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/infopipes.hpp"
#include "shard/channel.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe {
namespace {

using namespace std::chrono_literals;

// --- the raw ring -----------------------------------------------------------

TEST(ShardChannel, SpscRingAcrossKernelThreads) {
  shard::ShardChannel ch("ring", 8);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&ch] {
    for (std::uint64_t i = 0; i < kN;) {
      Item x = Item::token();
      x.seq = i;
      if (ch.try_push(x)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
    ch.set_eos();
  });
  std::uint64_t expect = 0;
  bool ordered = true;
  for (;;) {
    if (std::optional<Item> x = ch.try_pop()) {
      ordered = ordered && x->seq == expect;
      ++expect;
    } else if (ch.eos() && expect == kN) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expect, kN);
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.flow.puts, kN);
  EXPECT_EQ(s.flow.takes, kN);
  EXPECT_EQ(s.flow.fill, 0u);
  EXPECT_GE(s.flow.max_fill, 1u);
}

TEST(ShardChannel, CapacityBoundsAndForcePushReserve) {
  shard::ShardChannel ch("small", 2);
  Item a = Item::token();
  EXPECT_TRUE(ch.try_push(a));
  Item b = Item::token();
  EXPECT_TRUE(ch.try_push(b));
  Item c = Item::token();
  EXPECT_FALSE(ch.try_push(c));  // at capacity
  EXPECT_TRUE(ch.force_push(c)); // overflow reserve takes it
  EXPECT_EQ(ch.depth(), 3u);
  EXPECT_TRUE(ch.try_pop().has_value());
  Item d = Item::token();
  EXPECT_FALSE(ch.try_push(d));  // still >= capacity
}

// --- the group --------------------------------------------------------------

TEST(ShardGroup, RunOnExecutesOnShardAndPropagatesErrors) {
  shard::ShardGroup group(2);
  EXPECT_THROW(group.run_on(0, [] {}), rt::RuntimeError);  // not launched
  group.launch();
  std::thread::id seen0;
  std::thread::id seen1;
  group.run_on(0, [&seen0] { seen0 = std::this_thread::get_id(); });
  group.run_on(1, [&seen1] { seen1 = std::this_thread::get_id(); });
  EXPECT_NE(seen0, seen1);
  EXPECT_NE(seen0, std::this_thread::get_id());
  const int v = group.call_on(1, [] { return 41 + 1; });
  EXPECT_EQ(v, 42);
  EXPECT_THROW(group.run_on(0, [] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  group.stop();
  group.stop();  // idempotent
}

TEST(ShardGroup, MetricsSnapshotPrefixesShards) {
  shard::ShardGroup group(2);
  group.launch();
  group.run_on(1, [&group] {
    group.runtime(1).metrics().counter("test.pings").inc(3);
  });
  const obs::MetricsSnapshot snap = group.metrics_snapshot();
  EXPECT_NE(snap.find("shard0.rt.dispatches"), nullptr);
  EXPECT_NE(snap.find("shard1.rt.dispatches"), nullptr);
  const obs::MetricValue* v = snap.find("shard1.test.pings");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 3u);
  EXPECT_EQ(snap.find("shard0.test.pings"), nullptr);
  group.stop();
}

// --- sharded pipelines ------------------------------------------------------

/// Sink that also records broadcast control events it saw.
class EventRecordingSink : public PassiveSink {
 public:
  using PassiveSink::PassiveSink;
  std::vector<std::uint64_t> seqs;
  std::vector<int> events;
  bool eos = false;

  void handle_event(const Event& e) override { events.push_back(e.type); }

 protected:
  void consume(Item x) override { seqs.push_back(x.seq); }
  void on_eos() override { eos = true; }
};

/// Function stage that broadcasts a user event when a chosen seq passes by.
class BroadcastAtSeq : public FunctionComponent {
 public:
  BroadcastAtSeq(std::string name, std::uint64_t at, int event_type)
      : FunctionComponent(std::move(name)), at_(at), type_(event_type) {}

 protected:
  Item convert(Item x) override {
    if (x.seq == at_) broadcast(Event{type_});
    return x;
  }

 private:
  std::uint64_t at_;
  int type_;
};

TEST(ShardedRealization, TwoShardsPreserveOrderCountAndEos) {
  constexpr std::uint64_t kN = 5000;
  CountingSource src{"src", kN};
  FreeRunningPump pump{"pump"};
  Buffer buf{"buf", 16};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  ASSERT_EQ(sr.channel_count(), 1u);
  EXPECT_EQ(sr.channel(0).from_shard() == sr.channel(0).to_shard(), false);

  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));

  const StatsSnapshot stats = sr.stats_snapshot();
  const ChannelStats* cs = stats.channel("buf");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->flow.puts, kN);
  EXPECT_EQ(cs->flow.takes, kN);
  EXPECT_EQ(cs->flow.fill, 0u);
  EXPECT_EQ(cs->flow.capacity, 16u);

  const obs::MetricsSnapshot ms = sr.metrics_snapshot();
  const std::string chan_row =
      "shard" + std::to_string(sr.channel(0).to_shard()) + ".chan.buf.takes";
  const obs::MetricValue* row = ms.find(chan_row);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, kN);

  group.stop();  // joins host threads: direct reads below are race-free
  ASSERT_EQ(sink.seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(sink.seqs[i], i);
  EXPECT_TRUE(sink.eos);
}

TEST(ShardedRealization, FourShardChainDeliversEverythingInOrder) {
  constexpr std::uint64_t kN = 2000;
  CountingSource src{"src", kN};
  FreeRunningPump p1{"p1"};
  Buffer b1{"b1", 8};
  FreeRunningPump p2{"p2"};
  Buffer b2{"b2", 8};
  FreeRunningPump p3{"p3"};
  Buffer b3{"b3", 8};
  FreeRunningPump p4{"p4"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> b3 >> p4 >> sink;

  shard::ShardGroup group(4);
  shard::ShardedRealization sr(group, ch.pipeline());
  EXPECT_EQ(sr.channel_count(), 3u);
  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();
  ASSERT_EQ(sink.seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(sink.seqs[i], i);
  EXPECT_TRUE(sink.eos);
}

TEST(ShardedRealization, SingleShardGroupRunsWithoutCuts) {
  constexpr std::uint64_t kN = 1000;
  CountingSource src{"src", kN};
  FreeRunningPump pump{"pump"};
  Buffer buf{"buf", 16};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(1);
  shard::ShardedRealization sr(group, ch.pipeline());
  EXPECT_EQ(sr.channel_count(), 0u);
  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();
  EXPECT_EQ(sink.seqs.size(), kN);
  EXPECT_TRUE(sink.eos);
}

TEST(ShardedRealization, BackpressureStallsProducerNotItems) {
  constexpr std::uint64_t kN = 3000;
  CountingSource src{"src", kN};
  FreeRunningPump pump{"pump", rt::kPriorityData};
  Buffer buf{"buf", 2};  // tiny channel: the producer must outrun it
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  const StatsSnapshot stats = sr.stats_snapshot();
  const ChannelStats* cs = stats.channel("buf");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->flow.takes, kN);
  group.stop();
  ASSERT_EQ(sink.seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(sink.seqs[i], i);
}

TEST(ShardedRealization, BroadcastFromOneShardReachesTheOther) {
  constexpr std::uint64_t kN = 500;
  const int kPing = kEventUser + 7;
  CountingSource src{"src", kN};
  FreeRunningPump pump{"pump"};
  BroadcastAtSeq probe{"probe", 5, kPing};
  Buffer buf{"buf", 16};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> probe >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  std::atomic<int> listener_pings{0};
  sr.set_event_listener([&listener_pings, kPing](const Event& e) {
    if (e.type == kPing) listener_pings.fetch_add(1);
  });
  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();
  // The probe (upstream shard) broadcast once; the sink lives on the other
  // shard and must still have seen it.
  EXPECT_EQ(std::count(sink.events.begin(), sink.events.end(), kPing), 1);
  EXPECT_EQ(listener_pings.load(), 1);
  EXPECT_EQ(sink.seqs.size(), kN);
}

TEST(ShardedRealization, StopAndRestartLosesNothing) {
  constexpr std::uint64_t kN = 20000;
  CountingSource src{"src", kN};
  FreeRunningPump pump{"pump"};
  Buffer buf{"buf", 8};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  sr.start();
  std::this_thread::sleep_for(5ms);
  sr.stop();
  // Drivers acknowledge the stop at their next dispatch point.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!sr.finished() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(sr.finished());
  sr.start();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();
  // Every item exactly once, in order — including any item that was in
  // flight into the channel when the stop hit (the overflow-reserve stash).
  ASSERT_EQ(sink.seqs.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ(sink.seqs[i], i);
  EXPECT_TRUE(sink.eos);
}

TEST(ShardedRealization, ShutdownMidFlowTearsDownCleanly) {
  CountingSource src{"src", 1000000};  // would run for a long time
  FreeRunningPump pump{"pump"};
  Buffer buf{"buf", 4};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  {
    shard::ShardedRealization sr(group, ch.pipeline());
    sr.start();
    std::this_thread::sleep_for(5ms);
    sr.shutdown();  // unwinds threads, including any blocked in the channel
    // The destructor tears down while the group still runs (run_on path).
  }
  group.stop();
  EXPECT_LT(sink.seqs.size(), 1000000u);
}

TEST(ShardedRealization, DescribeNamesShardsAndChannels) {
  CountingSource src{"src", 10};
  FreeRunningPump pump{"pump"};
  Buffer buf{"buf", 16};
  FreeRunningPump pump2{"pump2"};
  EventRecordingSink sink{"sink"};
  auto ch = src >> pump >> buf >> pump2 >> sink;

  shard::ShardGroup group(2);
  shard::ShardedRealization sr(group, ch.pipeline());
  const std::string d = sr.describe();
  EXPECT_NE(d.find("sharded over 2 shards"), std::string::npos);
  EXPECT_NE(d.find("channel 'buf'"), std::string::npos);
  EXPECT_NE(d.find("shard 0:"), std::string::npos);
  EXPECT_NE(d.find("shard 1:"), std::string::npos);
  group.stop();
}

}  // namespace
}  // namespace infopipe
