// ip_session tests: one shared plan stamped into many live flows.
//
// The deterministic core runs under manual ShardGroups and virtual clocks —
// the same lockstep harness the balance suite uses — so session emission,
// class stealing and admission replay bit-identically across runs, which is
// asserted literally (two full runs, equal digests). The kill switch
// (config().sessions = false) is exercised against the shared path in the
// same harness: per-session digests must match across modes, while the
// realization counter exposes the cost the shared path avoids. The network
// front door runs real loopback TCP: N concurrent peers, each with its own
// adopted transport, opening and closing sessions through control frames.
#include <gtest/gtest.h>

#include <chrono>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "balance/accountant.hpp"
#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "core/realization_handle.hpp"
#include "net/error.hpp"
#include "net/socket_transport.hpp"
#include "rt/clock.hpp"
#include "rt/io_bridge.hpp"
#include "session/acceptor.hpp"
#include "session/plan.hpp"
#include "session/session.hpp"
#include "session/table.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::session {
namespace {

shard::ShardGroup::GroupOptions manual_opts() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  return opt;
}

/// Pins config().sessions for one scope (the INFOPIPE_SESSIONS kill
/// switch), so the suite behaves the same under the sessions=off CI pass:
/// tests of the shared-path mechanics pin it on; the kill-switch test
/// drives both modes explicitly.
class SessionsGuard {
 public:
  explicit SessionsGuard(bool on) : prev_(config().sessions) {
    config().sessions = on;
  }
  ~SessionsGuard() { config().sessions = prev_; }

 private:
  bool prev_;
};

/// Pins config().elastic for the topology-change tests (the
/// INFOPIPE_ELASTIC kill switch has its own suite in elastic_test.cpp).
class ElasticGuard {
 public:
  explicit ElasticGuard(bool on) : prev_(config().elastic) {
    config().elastic = on;
  }
  ~ElasticGuard() { config().elastic = prev_; }

 private:
  bool prev_;
};

// ---------- the shared plan --------------------------------------------------------

TEST(SharedPlan, AnalyzedOnceAndStampedManyTimes) {
  const SessionsGuard shared_on(true);
  EngineSpec spec;
  spec.stages = [](int) {
    std::vector<std::unique_ptr<Component>> v;
    v.push_back(std::make_unique<IdentityFunction>("sess.id"));
    return v;
  };
  const auto plan = SharedPlan::analyze(std::move(spec));

  // The planner saw src >> governor >> stage >> lag >> sink: one active
  // source driving one all-passive section.
  const PlanInfo& info = plan->info();
  EXPECT_EQ(info.components, 5u);
  ASSERT_EQ(info.sections.size(), 1u);
  EXPECT_EQ(info.sections[0].driver, "sess.src");
  EXPECT_EQ(info.sections[0].driver_style, Style::kActiveSource);
  bool has_gov = false;
  bool has_stage = false;
  for (const PlanInfo::Member& m : info.sections[0].members) {
    if (m.name == "sess.governor") has_gov = true;
    if (m.name == "sess.id") has_stage = true;
  }
  EXPECT_TRUE(has_gov);
  EXPECT_TRUE(has_stage);  // the factory's stage sits inside the section

  shard::ShardGroup group(2, manual_opts());
  SessionTable table(group, plan);
  ASSERT_TRUE(table.shared_mode());
  // One realize per shard, at construction — and never again.
  EXPECT_EQ(table.realizations(), 2u);

  std::vector<SessionId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(table.open_on(i % 2, SessionParams{}));
  }
  EXPECT_EQ(table.realizations(), 2u);  // stamps, not realizations
  EXPECT_EQ(table.live(), 100u);
  EXPECT_EQ(table.live_on(0), 50u);
  EXPECT_EQ(table.live_on(1), 50u);
  // Every session shares the ONE PlanInfo — the same object, not a copy.
  EXPECT_EQ(&table.plan_info(), &plan->info());

  for (SessionId id : ids) table.close(id);
  EXPECT_EQ(table.live(), 0u);
}

// ---------- lockstep emission and class stealing -----------------------------------

struct LockstepResult {
  std::vector<std::uint64_t> items;    // gold0, silver0, bronze0, gold1
  std::vector<std::uint64_t> digests;
  std::array<double, 3> mult0{};
  double bronze1 = 0.0;
  std::uint64_t total = 0;
  JitterSnapshot jitter;

  bool operator==(const LockstepResult& o) const {
    return items == o.items && digests == o.digests && total == o.total;
  }
};

LockstepResult lockstep_run() {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);

  std::vector<SessionId> ids;
  ids.push_back(table.open_on(0, SessionParams{QosClass::kGold, 20.0, 32}));
  ids.push_back(table.open_on(0, SessionParams{QosClass::kSilver, 20.0, 32}));
  ids.push_back(table.open_on(0, SessionParams{QosClass::kBronze, 20.0, 32}));
  ids.push_back(table.open_on(1, SessionParams{QosClass::kGold, 20.0, 32}));

  group.step_until(rt::seconds(1));
  // Pressure on shard 0: exactly what one feedback actuation would apply.
  table.inject_hint(0, 0.25);
  group.step_until(rt::seconds(3));

  LockstepResult r;
  for (SessionId id : ids) {
    r.items.push_back(table.items_of(id));
    r.digests.push_back(table.digest(id));
  }
  r.mult0 = {table.mult(0, QosClass::kGold), table.mult(0, QosClass::kSilver),
             table.mult(0, QosClass::kBronze)};
  r.bronze1 = table.mult(1, QosClass::kBronze);
  r.total = table.items_total();
  r.jitter = table.jitter();
  for (SessionId id : ids) table.close(id);
  return r;
}

TEST(SessionLockstep, ClassStealingIsBitIdenticalAcrossRuns) {
  const LockstepResult a = lockstep_run();
  const LockstepResult b = lockstep_run();
  EXPECT_TRUE(a == b) << "lockstep session runs diverged";

  // The hint degraded bronze to 0.25, silver to the midpoint, gold not at
  // all — so gold kept its cadence while bronze lost most of it.
  EXPECT_DOUBLE_EQ(a.mult0[0], 1.0);
  EXPECT_DOUBLE_EQ(a.mult0[1], 0.625);
  EXPECT_DOUBLE_EQ(a.mult0[2], 0.25);
  EXPECT_DOUBLE_EQ(a.bronze1, 1.0);  // the hint touched only shard 0
  EXPECT_GT(a.items[0], a.items[1]);  // gold > silver
  EXPECT_GT(a.items[1], a.items[2]);  // silver > bronze
  EXPECT_EQ(a.items[0], a.items[3]);  // gold cadence equal on both shards
  for (std::uint64_t d : a.digests) EXPECT_NE(d, 0u);

  // Virtual clocks fire exactly on schedule: inter-item jitter is zero.
  EXPECT_GT(a.jitter.samples, 0u);
  EXPECT_LE(a.jitter.p99_ns, 1u);
}

// ---------- the kill switch --------------------------------------------------------

struct ModeResult {
  bool shared = false;
  std::uint64_t realizations = 0;
  std::vector<std::uint64_t> items;
  std::vector<std::uint64_t> digests;
};

ModeResult mode_run(bool shared_on) {
  const SessionsGuard mode(shared_on);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);

  std::vector<SessionId> ids;
  ids.push_back(table.open_on(0, SessionParams{QosClass::kGold, 20.0, 32}));
  ids.push_back(table.open_on(0, SessionParams{QosClass::kBronze, 5.0, 16}));
  ids.push_back(table.open_on(1, SessionParams{QosClass::kSilver, 10.0, 8}));
  group.step_until(rt::seconds(2));

  ModeResult r;
  r.shared = table.shared_mode();
  r.realizations = table.realizations();
  for (SessionId id : ids) {
    r.items.push_back(table.items_of(id));
    r.digests.push_back(table.digest(id));
  }
  for (SessionId id : ids) table.close(id);
  return r;
}

TEST(SessionKillSwitch, FallbackEmitsBitIdenticalStreamsAtClassicCost) {
  const ModeResult shared = mode_run(true);
  const ModeResult solo = mode_run(false);

  ASSERT_TRUE(shared.shared);
  ASSERT_FALSE(solo.shared);
  // Same ids, same item counts, same payload digests — the sessions cannot
  // tell which mode produced them.
  EXPECT_EQ(shared.items, solo.items);
  EXPECT_EQ(shared.digests, solo.digests);
  for (std::uint64_t d : shared.digests) EXPECT_NE(d, 0u);
  for (std::uint64_t n : shared.items) EXPECT_GT(n, 0u);
  // The cost difference is the whole point: n_shards realizations shared,
  // one per session in fallback.
  EXPECT_EQ(shared.realizations, 2u);
  EXPECT_EQ(solo.realizations, 3u);
}

TEST(SessionTableManual, CloseStopsEmissionExactly) {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(1, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);

  const SessionId id =
      table.open_on(0, SessionParams{QosClass::kBronze, 100.0, 8});
  group.step_until(rt::seconds(1));
  const std::uint64_t before = table.items_of(id);
  EXPECT_GE(before, 100u);

  table.close(id);
  EXPECT_EQ(table.live(), 0u);
  group.step_until(rt::seconds(2));
  // The close drains before the next cycle: not one more item.
  EXPECT_EQ(table.items_of(id), before);
}

// ---------- elastic topology -------------------------------------------------------

TEST(SessionTableElastic, GrowsAndRetiresEnginesMidRun) {
  const SessionsGuard shared_on(true);
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  EXPECT_EQ(table.realizations(), 2u);

  // Growth: one engine realized for the new shard, exactly once.
  const int added = group.add_shard();
  table.sync_topology();
  EXPECT_EQ(table.shards(), 3);
  EXPECT_EQ(table.realizations(), 3u);
  table.sync_topology();  // idempotent
  EXPECT_EQ(table.realizations(), 3u);

  // The new engine pumps like its siblings.
  const SessionId id =
      table.open_on(added, SessionParams{QosClass::kBronze, 100.0, 8});
  group.step_until(rt::seconds(1));
  EXPECT_GE(table.items_of(id), 100u);

  // Retirement force-closes what was open there and refuses new stamps.
  table.retire_shard(added);
  EXPECT_EQ(table.live_on(added), 0u);
  EXPECT_EQ(table.live(), 0u);
  EXPECT_THROW((void)table.open_on(added, SessionParams{}), std::out_of_range);
  group.retire_shard(added);
  EXPECT_EQ(table.live_shards(), (std::vector<int>{0, 1}));

  // Survivors keep stamping and pumping.
  const SessionId id2 =
      table.open_on(0, SessionParams{QosClass::kBronze, 100.0, 8});
  group.step_until(rt::seconds(2));
  EXPECT_GT(table.items_of(id2), 0u);
  table.close(id2);
}

// ---------- admission --------------------------------------------------------------

TEST(SessionAcceptorTest, DecidesDeterministicallyAgainstMeasuredLoad) {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  balance::LoadAccountant acct(group);
  acct.note_busy_sample(0, 0.60);
  acct.note_busy_sample(1, 0.80);

  AdmissionPolicy pol;
  pol.cost_per_item = 0.01;  // rate 5 Hz -> planned load 0.05
  SessionAcceptor acc(table, acct, pol);

  // Same inputs, same decision — three times over.
  const SessionParams small{QosClass::kBronze, 5.0, 8};
  const Decision d1 = acc.decide(small);
  const Decision d2 = acc.decide(small);
  const Decision d3 = acc.decide(small);
  EXPECT_TRUE(d1.admitted);
  EXPECT_EQ(d1.shard, 0);  // 0.60 < 0.80: least-loaded wins
  EXPECT_EQ(d1.admitted, d2.admitted);
  EXPECT_EQ(d1.shard, d2.shard);
  EXPECT_EQ(d1.load, d3.load);

  // A heavy bronze session would push shard 0 past the bronze watermark
  // (0.60 + 0.20 > 0.70) — refused, with the reason spelled out. The same
  // load is fine for gold (0.80 <= 0.95) and silver (0.80 <= 0.85).
  const SessionParams heavy_bronze{QosClass::kBronze, 20.0, 8};
  const Decision rb = acc.decide(heavy_bronze);
  EXPECT_FALSE(rb.admitted);
  EXPECT_NE(rb.reason.find("bronze"), std::string::npos);
  EXPECT_NE(rb.reason.find("watermark"), std::string::npos);
  EXPECT_TRUE(acc.decide(SessionParams{QosClass::kGold, 20.0, 8}).admitted);
  EXPECT_TRUE(acc.decide(SessionParams{QosClass::kSilver, 20.0, 8}).admitted);

  // open() is decide() plus bookkeeping; close() releases it.
  const SessionAcceptor::OpenResult ok = acc.open(small);
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.shard, 0);
  EXPECT_DOUBLE_EQ(acc.planned_load(0), 0.05);
  const SessionAcceptor::OpenResult no = acc.open(heavy_bronze);
  EXPECT_FALSE(no.ok);
  EXPECT_FALSE(no.reason.empty());
  EXPECT_EQ(acc.admitted(), 1u);
  EXPECT_EQ(acc.rejected(), 1u);
  acc.close(ok.id);
  EXPECT_DOUBLE_EQ(acc.planned_load(0), 0.0);
  EXPECT_EQ(table.live(), 0u);
}

TEST(SessionAcceptorTest, PlannedLoadSpreadsAdmissionsBeforeTheEwmaSees) {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  balance::LoadAccountant acct(group);  // no samples: measured load is zero

  AdmissionPolicy pol;
  pol.cost_per_item = 0.125;  // exact in binary: no FP edge at the watermark
  SessionAcceptor acc(table, acct, pol);

  const SessionParams p{QosClass::kBronze, 1.0, 8};
  std::vector<int> shards;
  while (true) {
    const SessionAcceptor::OpenResult r = acc.open(p);
    if (!r.ok) break;
    shards.push_back(r.shard);
    ASSERT_LT(shards.size(), 50u) << "bronze watermark never reached";
  }
  // The EWMA is blind to brand-new sessions; the planned load is what
  // alternates the admissions instead of piling them on shard 0.
  ASSERT_GE(shards.size(), 4u);
  EXPECT_EQ((std::vector<int>(shards.begin(), shards.begin() + 4)),
            (std::vector<int>{0, 1, 0, 1}));
  // 0.70 bronze watermark / 0.125 per session: five sessions per shard.
  EXPECT_EQ(shards.size(), 10u);
  // Bronze is full; gold still fits under its higher watermark.
  EXPECT_TRUE(acc.open(SessionParams{QosClass::kGold, 1.0, 8}).ok);
}

TEST(SessionAcceptorTest, SeesShardsAddedAfterConstruction) {
  const SessionsGuard shared_on(true);
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2, manual_opts());
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  balance::LoadAccountant acct(group);
  acct.note_busy_sample(0, 0.60);
  acct.note_busy_sample(1, 0.55);

  AdmissionPolicy pol;
  pol.cost_per_item = 0.01;
  SessionAcceptor acc(table, acct, pol);

  const SessionParams p{QosClass::kBronze, 5.0, 8};
  EXPECT_EQ(acc.decide(p).shard, 1);  // least loaded of the original pair

  // The group grows mid-churn. The regression this pins: the acceptor used
  // to snapshot the shard count at construction and would never consider
  // the new shard; decide() must re-resolve the live set on every call.
  const int added = group.add_shard();
  table.sync_topology();
  const Decision d = acc.decide(p);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.shard, added);  // unmeasured and unplanned: effective load 0
  const SessionAcceptor::OpenResult r = acc.open(p);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.shard, added);
  EXPECT_DOUBLE_EQ(acc.planned_load(added), 0.05);

  // Retirement drops it from the candidate set just as promptly.
  table.retire_shard(added);
  group.retire_shard(added);
  EXPECT_EQ(acc.decide(p).shard, 1);
  EXPECT_EQ(table.live(), 0u);  // the force-close took the session with it
}

// ---------- the unified control surface --------------------------------------------

TEST(RealizationHandleTest, OneSurfaceOverSingleAndShardedRealizations) {
  // Single-runtime realization through the interface.
  {
    rt::Runtime rtm;
    CountingSource src{"src", 5};
    FreeRunningPump pump{"pump"};
    CollectorSink sink{"sink"};
    auto ch = src >> pump >> sink;
    Realization real(rtm, ch.pipeline());
    RealizationHandle& h = real;
    EXPECT_EQ(h.plan_info().sections.size(), 1u);
    EXPECT_FALSE(h.describe().empty());
    h.control(kEventStart);  // the generic spelling of start()
    rtm.run();
    EXPECT_EQ(sink.count(), 5u);
    EXPECT_FALSE(h.stats_report().empty());
    EXPECT_NE(h.metrics_snapshot().find("rt.dispatches"), nullptr);
  }
  // Sharded realization through the same interface.
  {
    CountingSource src{"src", 100};
    FreeRunningPump pump{"pump"};
    Buffer buf{"buf", 16};
    FreeRunningPump pump2{"pump2"};
    CollectorSink sink{"sink"};
    auto ch = src >> pump >> buf >> pump2 >> sink;
    shard::ShardGroup group(2);
    shard::ShardedRealization sr(group, ch.pipeline());
    RealizationHandle& h = sr;
    EXPECT_EQ(h.plan_info().sections.size(), 2u);
    EXPECT_FALSE(h.describe().empty());
    h.start();
    ASSERT_TRUE(sr.wait_finished(std::chrono::milliseconds(30000)));
    EXPECT_EQ(sink.count(), 100u);
    EXPECT_FALSE(h.stats_report().empty());
  }
}

// ---------- churn under real threads (TSan) ----------------------------------------

TEST(SessionTableLive, SurvivesConcurrentOpenCloseChurn) {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(2);
  group.launch();
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&table, t] {
      std::vector<SessionId> held;
      for (int i = 0; i < kPerThread; ++i) {
        held.push_back(table.open_on((t + i) % 2,
                                     SessionParams{QosClass::kBronze, 200.0, 8}));
        if (held.size() >= 8) {  // close out of open order
          table.close(held.front());
          held.erase(held.begin());
        }
      }
      for (SessionId id : held) table.close(id);
    });
  }
  for (std::thread& th : churners) th.join();
  EXPECT_EQ(table.live(), 0u);
  EXPECT_EQ(table.realizations(), 2u);

  // The engines survived the churn and still pump for new sessions.
  const SessionId id =
      table.open_on(0, SessionParams{QosClass::kGold, 200.0, 8});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (table.items_of(id) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(table.items_of(id), 0u);
  table.close(id);
}

// ---------- the network front door -------------------------------------------------

/// call_control must run on a runtime thread; spawn a one-shot ULT and
/// drive the runtime until it completes (the remote_node pattern).
std::string ctl(rt::Runtime& rtm, net::SocketTransport& link,
                net::wire::ControlOp op, const std::string& text) {
  std::optional<std::string> out;
  std::exception_ptr error;
  bool done = false;
  const rt::ThreadId tmp = rtm.spawn(
      "test.rpc", rt::kPriorityControl,
      [&](rt::Runtime&, rt::Message) -> rt::CodeResult {
        try {
          out = link.call_control(op, text, rt::seconds(5));
        } catch (...) {
          error = std::current_exception();
        }
        done = true;
        return rt::CodeResult::kTerminate;
      });
  rtm.send(tmp, rt::Message{0, rt::MsgClass::kData});
  while (!done) rtm.run_until(rtm.now() + rt::milliseconds(2));
  if (error) std::rethrow_exception(error);
  return std::move(*out);
}

template <typename Pred>
bool drive_until(rt::Runtime& rtm, Pred done,
                 rt::Time budget = rt::seconds(10)) {
  const rt::Time deadline = rtm.now() + budget;
  while (!done()) {
    if (rtm.now() >= deadline) return false;
    rtm.run_until(rtm.now() + rt::milliseconds(2));
  }
  return true;
}

TEST(SessionFrontDoor, ManyPeersOpenCloseAndDieOverRealSockets) {
  const SessionsGuard shared_on(true);
  shard::ShardGroup group(2);
  group.launch();
  const auto plan = SharedPlan::analyze(EngineSpec{});
  SessionTable table(group, plan);
  balance::LoadAccountant acct(group);

  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io{rtm};
  SessionAcceptor acc(table, acct);
  net::SocketConfig lcfg;
  lcfg.port = 0;
  acc.listen(rtm, io, lcfg);
  ASSERT_NE(acc.port(), 0);

  // Three peers at once — each gets its own adopted transport, nobody
  // queues behind the single-peer listen slot.
  std::vector<std::unique_ptr<net::SocketTransport>> clients;
  for (int i = 0; i < 3; ++i) {
    net::SocketConfig ccfg;
    ccfg.port = acc.port();
    clients.push_back(net::SocketTransport::connect(rtm, io, ccfg));
  }
  ASSERT_TRUE(drive_until(rtm, [&] { return acc.peers() == 3; }));

  // One open per peer, through control frames.
  std::vector<SessionId> ids;
  for (auto& c : clients) {
    const std::string reply =
        ctl(rtm, *c, net::wire::ControlOp::kSessionOpen,
            "gold\x1F" "50\x1F" "32");
    const std::size_t sep = reply.find('\x1F');
    ASSERT_NE(sep, std::string::npos) << reply;
    ids.push_back(static_cast<SessionId>(std::stoull(reply.substr(0, sep))));
    const int shard = std::stoi(reply.substr(sep + 1));
    EXPECT_EQ(shard, shard_of_session(ids.back()));
  }
  EXPECT_EQ(table.live(), 3u);
  EXPECT_EQ(acc.admitted(), 3u);
  ASSERT_TRUE(drive_until(rtm, [&] { return table.items_total() > 0; }));

  // Malformed and unsupported requests come back as error replies.
  EXPECT_THROW(ctl(rtm, *clients[0], net::wire::ControlOp::kSessionOpen,
                   "copper\x1F" "10\x1F" "8"),
               net::RemoteError);
  EXPECT_THROW(
      ctl(rtm, *clients[0], net::wire::ControlOp::kCreate, "nope"),
      net::RemoteError);

  // Peer 0 closes its own session.
  ctl(rtm, *clients[0], net::wire::ControlOp::kSessionClose,
      std::to_string(ids[0]));
  EXPECT_EQ(table.live(), 2u);

  // Peer 2 dies without closing: the sweep reaps its session.
  clients[2].reset();
  ASSERT_TRUE(drive_until(rtm, [&] {
    acc.sweep_peers();
    return acc.peers() == 2;
  }));
  EXPECT_EQ(table.live(), 1u);
  EXPECT_EQ(table.live_on(shard_of_session(ids[1])), 1u);
}

}  // namespace
}  // namespace infopipe::session
