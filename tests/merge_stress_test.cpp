// Stress tests for shared regions (§3.2's synchronized objects under
// contention): many sections funnel through MergeTees into shared tails;
// the section lock must serialize data processing, keep control handlers
// legal (re-entrant only for the owner), and deliver exactly once.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"

namespace infopipe {
namespace {

/// A stage that detects any interleaving violation: if two threads were
/// ever inside push() at once, `violations` becomes nonzero. It also yields
/// mid-processing (via a buffer-less no-op that cannot yield — so instead
/// it emits twice, lengthening the critical section).
class MutualExclusionProbe : public Consumer {
 public:
  explicit MutualExclusionProbe(std::string name)
      : Consumer(std::move(name)) {}

  int violations = 0;

 protected:
  void push(Item x) override {
    if (inside_) ++violations;
    inside_ = true;
    push_next(std::move(x));
    inside_ = false;
  }

 private:
  bool inside_ = false;
};

TEST(MergeStress, ManyBranchesExactlyOnceDelivery) {
  for (int branches : {2, 4, 8}) {
    rt::Runtime rtm;
    std::vector<std::unique_ptr<CountingSource>> srcs;
    std::vector<std::unique_ptr<ClockedPump>> pumps;
    MergeTee merge("merge", branches);
    MutualExclusionProbe probe("probe");
    CollectorSink sink("sink");
    Pipeline p;
    constexpr std::uint64_t kPerBranch = 200;
    for (int b = 0; b < branches; ++b) {
      srcs.push_back(std::make_unique<CountingSource>(
          "src" + std::to_string(b), kPerBranch));
      // Co-prime-ish rates so arrivals interleave irregularly.
      pumps.push_back(std::make_unique<ClockedPump>(
          "pump" + std::to_string(b), 97.0 + 13.0 * b));
      p.connect(*srcs.back(), 0, *pumps.back(), 0);
      p.connect(*pumps.back(), 0, merge, b);
    }
    p.connect(merge, 0, probe, 0);
    p.connect(probe, 0, sink, 0);
    Realization real(rtm, p);
    real.start();
    rtm.run();
    EXPECT_EQ(sink.count(),
              static_cast<std::uint64_t>(branches) * kPerBranch)
        << branches << " branches";
    EXPECT_TRUE(sink.eos_seen());
    EXPECT_EQ(probe.violations, 0);
  }
}

TEST(MergeStress, SharedTailWithBlockingBufferSerializes) {
  // The shared tail ends in a tiny blocking buffer drained slowly: pushers
  // block INSIDE the shared region holding the lock; the lock must hand
  // over cleanly and nothing deadlocks.
  rt::Runtime rtm;
  CountingSource s1("s1", 60);
  CountingSource s2("s2", 60);
  ClockedPump p1("p1", 300.0);
  ClockedPump p2("p2", 310.0);
  MergeTee merge("merge", 2);
  MutualExclusionProbe probe("probe");
  Buffer buf("buf", 2, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 150.0);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p1, 0, merge, 0);
  p.connect(p2, 0, merge, 1);
  p.connect(merge, 0, probe, 0);
  p.connect(probe, 0, buf, 0);
  p.connect(buf, 0, drain, 0);
  p.connect(drain, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 120u);
  EXPECT_EQ(probe.violations, 0);
  EXPECT_GT(buf.stats().put_blocks, 0u)
      << "the scenario must actually block inside the shared tail";
}

TEST(MergeStress, ControlEventsIntoSharedComponentsStayLegal) {
  // Broadcast control events while the shared tail is under contention; the
  // §3.2 invariant (no handler during data processing — except for the
  // owner blocked in a push) must hold.
  class GuardedShared : public Consumer {
   public:
    explicit GuardedShared(std::string n) : Consumer(std::move(n)) {}
    bool in_data = false;
    int handled = 0;
    bool blocked_in_push = false;

   protected:
    void push(Item x) override {
      EXPECT_FALSE(in_data);
      in_data = true;
      blocked_in_push = true;
      push_next(std::move(x));  // may block in the downstream buffer
      blocked_in_push = false;
      in_data = false;
    }
    void handle_event(const Event& e) override {
      if (e.type != kEventUser + 9) return;
      // Legal exactly when we are not mid-processing OR we are blocked in
      // the push (the paper allows delivery while blocked).
      EXPECT_TRUE(!in_data || blocked_in_push);
      ++handled;
    }
  };

  rt::Runtime rtm;
  CountingSource s1("s1", 150);
  CountingSource s2("s2", 150);
  ClockedPump p1("p1", 500.0);
  ClockedPump p2("p2", 490.0);
  MergeTee merge("merge", 2);
  GuardedShared shared("shared");
  Buffer buf("buf", 2, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 400.0);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p1, 0, merge, 0);
  p.connect(p2, 0, merge, 1);
  p.connect(merge, 0, shared, 0);
  p.connect(shared, 0, buf, 0);
  p.connect(buf, 0, drain, 0);
  p.connect(drain, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  // Base seed from INFOPIPE_SEED (default 1 keeps the historical sequence).
  std::mt19937 rng(10u + static_cast<unsigned>(config().seed));
  rt::Time t = 0;
  for (int i = 0; i < 60; ++i) {
    t += rt::microseconds(std::uniform_int_distribution<int>(500, 20000)(rng));
    rtm.run_until(t);
    real.post_event_to(shared, Event{kEventUser + 9});
  }
  rtm.run();
  EXPECT_EQ(sink.count(), 300u);
  EXPECT_EQ(shared.handled, 60);
}

TEST(MergeStress, CascadedMerges) {
  // merge(merge(a,b), c): the inner merge's tail contains the outer merge.
  rt::Runtime rtm;
  CountingSource a("a", 50), b("b", 50), c("c", 50);
  ClockedPump pa("pa", 200.0), pb("pb", 210.0), pc("pc", 190.0);
  MergeTee inner("inner", 2);
  MergeTee outer("outer", 2);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(a, 0, pa, 0);
  p.connect(b, 0, pb, 0);
  p.connect(c, 0, pc, 0);
  p.connect(pa, 0, inner, 0);
  p.connect(pb, 0, inner, 1);
  p.connect(inner, 0, outer, 0);
  p.connect(pc, 0, outer, 1);
  p.connect(outer, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 150u);
  EXPECT_TRUE(sink.eos_seen());
}

TEST(MergeStress, SharedTailThroughCoroutine) {
  // The shared tail contains an ACTIVE component: both pumps' items funnel
  // through one coroutine; serialization then happens at its mailbox.
  rt::Runtime rtm;
  CountingSource s1("s1", 80);
  CountingSource s2("s2", 80);
  ClockedPump p1("p1", 400.0);
  ClockedPump p2("p2", 410.0);
  MergeTee merge("merge", 2);
  LambdaActive doubler("doubler", [](const auto& pull, const auto& push) {
    for (;;) {
      Item x = pull();
      x.kind *= 2;
      push(std::move(x));
    }
  });
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p1, 0, merge, 0);
  p.connect(p2, 0, merge, 1);
  p.connect(merge, 0, doubler, 0);
  p.connect(doubler, 0, sink, 0);
  Realization real(rtm, p);
  EXPECT_EQ(real.thread_count(), 3u);  // two pumps + one coroutine
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 160u);
  EXPECT_TRUE(sink.eos_seen());
}

}  // namespace
}  // namespace infopipe
