// Elastic shard topology tests (ARCHITECTURE §19): runtime grow/shrink of a
// ShardGroup, thread transparency across topology changes, and record→replay
// of elastic runs.
//
// The heart of the suite extends the lockstep discipline to the topology
// itself: the same finite flow is run undisturbed and with a mid-flow
// add_shard → migrate → retire_shard sequence, and the sink must collect the
// exact same item sequence bit for bit — a section's placement is invisible
// to the flow even while the set of placements changes. The record→replay
// test then does the elastic run LIVE (kernel threads, real clocks), records
// the scale events as trace frames, and re-executes on the manual substrate:
// per-flow digests must match. INFOPIPE_ELASTIC=off must collapse everything
// back to the fixed-topology behavior, with identical digests.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "replay/digest.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/trace.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe {
namespace {

using namespace std::chrono_literals;

shard::ShardGroup::GroupOptions manual_opts() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  return opt;
}

/// Pins config().elastic for one scope (the INFOPIPE_ELASTIC kill switch),
/// so the suite behaves the same under the elastic=off CI pass: tests of
/// the elastic mechanics pin it on; the kill-switch test drives both modes
/// explicitly.
class ElasticGuard {
 public:
  explicit ElasticGuard(bool on) : prev_(config().elastic) {
    config().elastic = on;
  }
  ~ElasticGuard() { config().elastic = prev_; }

 private:
  bool prev_;
};

// ---- the group itself ------------------------------------------------------

TEST(ElasticGroup, AddShardGrowsTheLiveSet) {
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2, manual_opts());
  EXPECT_EQ(group.size(), 2);
  EXPECT_EQ(group.live_count(), 2);

  const int added = group.add_shard();
  EXPECT_EQ(added, 2);  // ids are dense: the new shard is old size()
  EXPECT_EQ(group.size(), 3);
  EXPECT_EQ(group.live_count(), 3);
  EXPECT_TRUE(group.is_live(added));
  EXPECT_EQ(group.live_shards(), (std::vector<int>{0, 1, 2}));

  // The new shard is a full citizen of the manual stepping substrate.
  group.step_until(rt::milliseconds(10));
  EXPECT_EQ(group.runtime(added).now(), rt::milliseconds(10));
}

TEST(ElasticGroup, RetireKeepsTheSlotAndNeverReusesTheId) {
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2, manual_opts());
  group.retire_shard(1);
  EXPECT_FALSE(group.is_live(1));
  EXPECT_EQ(group.size(), 2);  // the slot is retained, not erased
  EXPECT_EQ(group.live_count(), 1);
  EXPECT_EQ(group.live_shards(), (std::vector<int>{0}));

  EXPECT_THROW(group.retire_shard(1), rt::RuntimeError);  // already retired
  EXPECT_THROW(group.retire_shard(0), rt::RuntimeError);  // last live shard
  EXPECT_THROW(group.retire_shard(7), std::out_of_range);  // unknown

  // Growth after retirement hands out a FRESH id — indices that escaped
  // into plans and traces stay unambiguous forever.
  const int added = group.add_shard();
  EXPECT_EQ(added, 2);
  EXPECT_FALSE(group.is_live(1));
  EXPECT_EQ(group.live_shards(), (std::vector<int>{0, 2}));
}

TEST(ElasticGroup, AddAndRetireUnderRealKernelThreads) {
  const ElasticGuard elastic_on(true);
  shard::ShardGroup group(2);
  group.launch();

  const int added = group.add_shard();
  ASSERT_EQ(added, 2);
  // The new shard got its own pinned host thread immediately.
  const auto tid0 = group.call_on(0, [] { return std::this_thread::get_id(); });
  const auto tid2 =
      group.call_on(added, [] { return std::this_thread::get_id(); });
  EXPECT_NE(tid0, tid2);
  EXPECT_NE(tid2, std::this_thread::get_id());

  group.retire_shard(1);
  EXPECT_FALSE(group.is_live(1));
  EXPECT_THROW(group.run_on(1, [] {}), rt::RuntimeError);

  // Retired shards still report their final counters; live ones theirs.
  const obs::MetricsSnapshot snap = group.metrics_snapshot();
  EXPECT_NE(snap.find("shard1.rt.dispatches"), nullptr);
  EXPECT_NE(snap.find("shard2.rt.dispatches"), nullptr);
  group.stop();
}

// ---- lockstep transparency across topology changes -------------------------

struct ElasticLockstepResult {
  std::vector<std::uint64_t> seqs;
  bool eos = false;
  int added = -1;
  int retired = -1;
};

/// Three sections over two manual shards, 800 items at 200 Hz. When `scale`
/// is set, a third shard is added at t = 2 s and section 1 is migrated onto
/// it; its old home — empty after the move — is retired at t = 4 s, all
/// mid-flow.
ElasticLockstepResult run_elastic_lockstep(bool scale) {
  shard::ShardGroup group(2, manual_opts());

  constexpr std::uint64_t kN = 800;
  CountingSource src("src", kN);
  ClockedPump p1("p1", 200.0);
  Buffer b1("b1", 32);
  ClockedPump p2("p2", 200.0);
  Buffer b2("b2", 32);
  ClockedPump p3("p3", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  EXPECT_EQ(sr.section_count(), 3u);

  ElasticLockstepResult r;
  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(8);
       t += rt::milliseconds(100)) {
    group.step_until(t);
    if (scale && t == rt::seconds(2)) {
      r.added = group.add_shard();
      sr.sync_topology();
      r.retired = sr.shard_of_section(1);
      sr.migrate_section(1, r.added);
      EXPECT_EQ(sr.shard_of_section(1), r.added);
    }
    if (scale && t == rt::seconds(4)) {
      group.retire_shard(r.retired);  // empty since the migration
    }
  }
  EXPECT_TRUE(sr.finished());
  r.seqs = sink.seqs();
  r.eos = sink.eos_seen();
  return r;
}

TEST(ElasticLockstep, GrowMigrateRetireIsBitIdentical) {
  const ElasticGuard elastic_on(true);
  const ElasticLockstepResult plain = run_elastic_lockstep(false);
  const ElasticLockstepResult scaled = run_elastic_lockstep(true);

  ASSERT_EQ(plain.seqs.size(), 800u);
  ASSERT_EQ(scaled.seqs.size(), 800u);
  for (std::uint64_t i = 0; i < 800; ++i) {
    ASSERT_EQ(scaled.seqs[i], i) << "at " << i;
  }
  // The grown-and-shrunk run's output is bit-identical to the fixed run.
  EXPECT_EQ(scaled.seqs, plain.seqs);
  EXPECT_TRUE(plain.eos);
  EXPECT_TRUE(scaled.eos);
  EXPECT_EQ(scaled.added, 2);
  EXPECT_GE(scaled.retired, 0);
}

TEST(ElasticKillSwitch, OffCollapsesToFixedTopologyWithIdenticalDigests) {
  std::vector<std::uint64_t> with_elastic;
  std::vector<std::uint64_t> without;
  {
    const ElasticGuard on(true);
    with_elastic = run_elastic_lockstep(false).seqs;
  }
  {
    const ElasticGuard off(false);
    without = run_elastic_lockstep(false).seqs;
    // The switch pins the construction topology: both verbs refuse.
    shard::ShardGroup group(2, manual_opts());
    EXPECT_THROW(group.add_shard(), rt::RuntimeError);
    EXPECT_THROW(group.retire_shard(1), rt::RuntimeError);
    EXPECT_EQ(group.size(), 2);
    EXPECT_EQ(group.live_count(), 2);
  }
  ASSERT_EQ(without.size(), 800u);
  EXPECT_EQ(with_elastic, without);
}

// ---- record -> replay of an elastic run ------------------------------------

/// Two sections over two shards with DigestProbes on both sides of the cut
/// (the replay suite's probed flow, reused for the elastic variant).
struct ElasticProbedPipeline {
  CountingSource src;
  ClockedPump p1;
  replay::DigestProbe up{"up"};
  Buffer buf{"buf", 32};
  ClockedPump p2;
  replay::DigestProbe down{"down"};
  CollectorSink sink{"sink"};
  Pipeline pipe;
  std::optional<shard::ShardedRealization> sr;

  ElasticProbedPipeline(shard::ShardGroup& g, std::uint64_t items, double hz)
      : src("src", items), p1("p1", hz), p2("p2", hz) {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, up, 0);
    pipe.connect(up, 0, buf, 0);
    pipe.connect(buf, 0, p2, 0);
    pipe.connect(p2, 0, down, 0);
    pipe.connect(down, 0, sink, 0);
    sr.emplace(g, pipe);
  }

  [[nodiscard]] std::vector<replay::Trace::Flow> flows() const {
    return {replay::Trace::Flow{"up", up.digest(), up.items()},
            replay::Trace::Flow{"down", down.digest(), down.items()}};
  }
};

TEST(ElasticRecordReplay, GrowShrinkRunReplaysBitIdentically) {
  const ElasticGuard elastic_on(true);
  replay::ScheduleRecorder rec;
  if (!config().record) {
    GTEST_SKIP() << "INFOPIPE_RECORD=off";
  }

  replay::Trace trace;
  {
    shard::ShardGroup group(2);
    ElasticProbedPipeline pl(group, 600, 400.0);
    ASSERT_EQ(pl.sr->section_count(), 2u);
    rec.attach(group);
    ASSERT_TRUE(rec.install());
    group.launch();
    pl.sr->start();
    // Mid-flow: grow by one shard, move section 1 onto it, retire its old
    // home — all while items stream and the recorder watches.
    std::this_thread::sleep_for(400ms);
    const int added = group.add_shard();
    ASSERT_EQ(added, 2);
    pl.sr->sync_topology();
    const int victim = pl.sr->shard_of_section(1);
    pl.sr->migrate_section(1, added);
    group.retire_shard(victim);
    ASSERT_TRUE(pl.sr->wait_finished(30000ms));
    group.stop();
    rec.uninstall();
    for (const replay::Trace::Flow& f : pl.flows()) {
      rec.note_flow(f.name, f.digest, f.items);
    }
    trace = rec.finish();
    EXPECT_EQ(pl.down.items(), 600u);
  }

  // meta.n_shards is the ATTACH-time count; growth lives in kScale frames.
  EXPECT_EQ(trace.meta.n_shards, 2);
  const std::vector<std::uint64_t> counts = trace.kind_counts();
  EXPECT_EQ(counts[static_cast<int>(replay::FrameKind::kScale)], 2u);
  EXPECT_EQ(counts[static_cast<int>(replay::FrameKind::kMigration)], 3u);
  ASSERT_EQ(trace.flows.size(), 2u);

  replay::Replayer rp(trace);
  const replay::ReplayResult result = rp.run([](shard::ShardGroup& g) {
    auto st = std::make_shared<ElasticProbedPipeline>(g, 600, 400.0);
    st->sr->start();
    replay::Replayer::Build b;
    b.state = st;
    b.real = &*st->sr;
    b.flows = [st] { return st->flows(); };
    return b;
  });
  EXPECT_TRUE(result.ok) << result.summary;
  EXPECT_EQ(result.migrations_applied, 1);
  EXPECT_EQ(result.scales_applied, 2);
  EXPECT_GT(result.steps, 0u);
}

}  // namespace
}  // namespace infopipe
