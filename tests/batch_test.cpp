// Batched item path (PR 6): span-based push/pop/consume from pump to shard
// channel.
//
// The contract under test: batching (PumpSpec::max_batch > 1) is a pure
// throughput optimization — the flow a sink observes (sequence, payloads,
// EOS) is bit-identical to the per-item path, including under buffer drop
// policies, mid-batch end-of-stream, and a live cross-shard migration; and
// INFOPIPE_BATCH=off (config().batching) collapses every batched pump back
// to classic one-item cycles at run time.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe {
namespace {

/// Flips config().batching for one scope (the INFOPIPE_BATCH kill switch).
class BatchGuard {
 public:
  explicit BatchGuard(bool on) : prev_(config().batching) {
    config().batching = on;
  }
  ~BatchGuard() { config().batching = prev_; }

 private:
  bool prev_;
};

// ---------- ShardChannel span primitives ------------------------------------

TEST(BatchChannel, SpanOpsReserveCapacityBoundedBursts) {
  shard::ShardChannel ch("x", 8);
  std::vector<Item> in(12);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = Item::token();
    in[i].seq = i;
  }
  // One reservation claims min(space, span) slots — never the overflow
  // reserve.
  EXPECT_EQ(ch.try_push_span(ItemSpan(in.data(), in.size())), 8u);
  EXPECT_EQ(ch.depth(), 8u);
  EXPECT_EQ(ch.try_push_span(ItemSpan(in.data() + 8, 4)), 0u);

  std::vector<Item> out(16);
  EXPECT_EQ(ch.try_pop_span(ItemSpan(out.data(), out.size())), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].seq, i);
  EXPECT_EQ(ch.try_pop_span(ItemSpan(out.data(), out.size())), 0u);
  EXPECT_EQ(ch.depth(), 0u);
}

TEST(BatchChannel, EosDrainsQueuedItemsFirst) {
  shard::ShardChannel ch("x", 8);
  std::vector<Item> in(3);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = Item::token();
    in[i].seq = i;
  }
  ASSERT_EQ(ch.try_push_span(ItemSpan(in.data(), in.size())), 3u);
  ch.set_eos();
  // The sticky flag never hides queued data: the burst drains first.
  std::vector<Item> out(8);
  EXPECT_EQ(ch.try_pop_span(ItemSpan(out.data(), out.size())), 3u);
  EXPECT_EQ(out[2].seq, 2u);
  EXPECT_EQ(ch.try_pop_span(ItemSpan(out.data(), out.size())), 0u);
  EXPECT_TRUE(ch.eos());
}

// ---------- single-shard batched flows --------------------------------------

struct FlowResult {
  std::vector<std::uint64_t> seqs;
  bool eos = false;
};

TEST(Batch, BatchedAndPerItemFlowsAreBitIdentical) {
  auto run = [](bool batching) {
    BatchGuard guard(batching);
    rt::Runtime rtm;
    CountingSource src("src", 500);
    FreeRunningPump pump(PumpSpec{.name = "pump", .max_batch = 16});
    Buffer buf("buf", 32);
    ClockedPump drain(
        PumpSpec{.name = "drain", .rate_hz = 500.0, .max_batch = 8});
    CollectorSink sink("sink");
    auto ch = src >> pump >> buf >> drain >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    return FlowResult{sink.seqs(), sink.eos_seen()};
  };
  const FlowResult on = run(true);
  const FlowResult off = run(false);
  ASSERT_EQ(on.seqs.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) ASSERT_EQ(on.seqs[i], i);
  // The kill switch is the whole per-item path, not a tuned-down batch.
  EXPECT_EQ(on.seqs, off.seqs);
  EXPECT_TRUE(on.eos);
  EXPECT_TRUE(off.eos);
}

TEST(Batch, DropOldestEvictsSpanPrefixBurstWise) {
  BatchGuard guard(true);
  rt::Runtime rtm;
  CountingSource src("src", 64);
  // One 1 Hz fire moves the entire flow as a single 64-item span.
  ClockedPump fill(PumpSpec{.name = "fill", .rate_hz = 1.0, .max_batch = 64});
  Buffer buf("buf", 8, FullPolicy::kDropOldest, EmptyPolicy::kNil);
  ClockedPump drain("drain", 1000.0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(500));
  real.shutdown();
  rtm.run();
  // kDropOldest keeps the newest `capacity` items of (queue ++ span): with
  // the burst alone exceeding capacity, the span's own 56-item PREFIX is
  // dropped and the tail 56..63 survives, in order.
  const std::vector<std::uint64_t> want{56, 57, 58, 59, 60, 61, 62, 63};
  EXPECT_EQ(sink.seqs(), want);
  EXPECT_EQ(buf.stats().drops, 56u);
}

TEST(Batch, EosArrivesOnlyAtBurstBoundaries) {
  BatchGuard guard(true);
  rt::Runtime rtm;
  CountingSource src("src", 10);  // deliberately not a multiple of max_batch
  FreeRunningPump pump(PumpSpec{.name = "pump", .max_batch = 64});
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  // The final short burst carries data only; EOS follows as its own
  // per-item push on the next fire (a span never mixes data and specials).
  ASSERT_EQ(sink.count(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sink.seqs()[i], i);
  EXPECT_TRUE(sink.eos_seen());
}

// ---------- BatchFilter and the per-item adapter -----------------------------

/// Span-native filter: tags every data item's kind, whole bursts at a time.
class TagKind : public BatchFilter {
 public:
  TagKind(std::string name, int kind)
      : BatchFilter(std::move(name)), kind_(kind) {}

  [[nodiscard]] std::uint64_t bursts() const noexcept { return bursts_; }

 protected:
  void convert_span(ItemSpan xs) override {
    ++bursts_;
    for (Item& x : xs) {
      if (x.is_data()) x.kind = kind_;
    }
  }

 private:
  int kind_;
  std::uint64_t bursts_ = 0;
};

TEST(Batch, BatchFilterAndPerItemFilterComposeIdentically) {
  auto run = [](bool batching) {
    BatchGuard guard(batching);
    rt::Runtime rtm;
    CountingSource src("src", 300);
    FreeRunningPump pump(PumpSpec{.name = "pump", .max_batch = 32});
    TagKind tag("tag", 7);  // span-native
    LambdaFunction bump("bump", [](Item x) {  // per-item, auto-adapted
      x.seq += 1000;
      return x;
    });
    CollectorSink sink("sink");
    auto ch = src >> pump >> tag >> bump >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    FlowResult r{sink.seqs(), sink.eos_seen()};
    for (const CollectorSink::Arrival& a : sink.arrivals()) {
      EXPECT_EQ(a.item.kind, 7);
    }
    return r;
  };
  const FlowResult on = run(true);
  const FlowResult off = run(false);
  ASSERT_EQ(on.seqs.size(), 300u);
  EXPECT_EQ(on.seqs.front(), 1000u);
  EXPECT_EQ(on.seqs, off.seqs);
  EXPECT_TRUE(on.eos);
  EXPECT_TRUE(off.eos);
}

// ---------- sharded lockstep: batching across a live migration ---------------

struct LockstepResult {
  std::vector<std::uint64_t> seqs;
  bool eos = false;
  std::vector<shard::MigrationOutcome> outcomes;
};

/// Three sections over two manual shards, all pumps batched (max_batch = 8).
/// When `migrate` is set, section 1 moves to the other shard at t = 0.5 s
/// and back at t = 1 s — mid-flow in both the batched and per-item runs, so
/// the quiesce lands between span bursts with items queued in the cut ring.
LockstepResult run_sharded(bool batching, bool migrate) {
  BatchGuard guard(batching);
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  constexpr std::uint64_t kN = 3000;
  CountingSource src("src", kN);
  ClockedPump p1(PumpSpec{.name = "p1", .rate_hz = 200.0, .max_batch = 8});
  Buffer b1("b1", 32);
  ClockedPump p2(PumpSpec{.name = "p2", .rate_hz = 200.0, .max_batch = 8});
  Buffer b2("b2", 32);
  ClockedPump p3(PumpSpec{.name = "p3", .rate_hz = 200.0, .max_batch = 8});
  CollectorSink sink("sink");
  auto ch = src >> p1 >> b1 >> p2 >> b2 >> p3 >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  EXPECT_EQ(sr.section_count(), 3u);

  LockstepResult r;
  const int home = sr.shard_of_section(1);
  const int away = 1 - home;

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(20);
       t += rt::milliseconds(100)) {
    group.step_until(t);
    if (migrate && t == rt::milliseconds(500)) {
      r.outcomes.push_back(sr.migrate_section(1, away));
      EXPECT_EQ(sr.shard_of_section(1), away);
    }
    if (migrate && t == rt::seconds(1)) {
      r.outcomes.push_back(sr.migrate_section(1, home));
      EXPECT_EQ(sr.shard_of_section(1), home);
    }
  }
  EXPECT_TRUE(sr.finished());
  r.seqs = sink.seqs();
  r.eos = sink.eos_seen();
  return r;
}

TEST(BatchLockstep, ShardedFlowBitIdenticalToPerItemAcrossMigration) {
  const LockstepResult on = run_sharded(true, true);
  const LockstepResult off = run_sharded(false, true);

  // Zero loss, zero duplication, order preserved, under live migration with
  // batched span traffic through the cut rings...
  ASSERT_EQ(on.seqs.size(), 3000u);
  for (std::uint64_t i = 0; i < 3000; ++i) ASSERT_EQ(on.seqs[i], i) << i;
  // ...and the batched flow is bit-identical to the per-item flow.
  EXPECT_EQ(on.seqs, off.seqs);
  EXPECT_TRUE(on.eos);
  EXPECT_TRUE(off.eos);
  ASSERT_EQ(on.outcomes.size(), 2u);
  EXPECT_EQ(on.outcomes[0].cuts_created, on.outcomes[1].cuts_collapsed);
}

TEST(BatchLockstep, UndisturbedShardedFlowMatchesMigratedOne) {
  const LockstepResult plain = run_sharded(true, false);
  const LockstepResult moved = run_sharded(true, true);
  ASSERT_EQ(plain.seqs.size(), 3000u);
  EXPECT_EQ(plain.seqs, moved.seqs);
  EXPECT_TRUE(plain.eos);
  EXPECT_TRUE(moved.eos);
}

}  // namespace
}  // namespace infopipe
