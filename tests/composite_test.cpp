// Composite Infopipe tests: bundles splice into pipelines as single units,
// nest, and the canned net bundles reproduce the hand-wired equivalents.
#include <gtest/gtest.h>

#include "core/composite.hpp"
#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/bundles.hpp"

namespace infopipe {
namespace {

TEST(Composite, BasicBundleSplicesAndRuns) {
  CompositePipe doubler_then_inc("xform");
  auto& dbl = doubler_then_inc.add<LambdaFunction>("dbl", [](Item x) {
    x.kind *= 2;
    return x;
  });
  auto& inc = doubler_then_inc.add<LambdaFunction>("inc", [](Item x) {
    ++x.kind;
    return x;
  });
  doubler_then_inc.connect(dbl, inc);
  doubler_then_inc.set_entry(dbl);
  doubler_then_inc.set_exit(inc);
  EXPECT_EQ(doubler_then_inc.component_count(), 2u);

  rt::Runtime rtm;
  std::vector<Item> in;
  for (int v : {1, 2, 3}) in.push_back(Item::token(v));
  VectorSource src("src", std::move(in));
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");

  Pipeline p;
  doubler_then_inc.splice_into(p);
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, doubler_then_inc.entry(), 0);
  p.connect(doubler_then_inc.exit(), 0, sink, 0);

  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 3u);
  std::vector<int> kinds;
  for (const auto& a : sink.arrivals()) kinds.push_back(a.item.kind);
  EXPECT_EQ(kinds, (std::vector<int>{3, 5, 7}));
}

TEST(Composite, MissingEntryIsAnError) {
  CompositePipe c("incomplete");
  EXPECT_THROW((void)c.entry(), CompositionError);
  EXPECT_THROW((void)c.exit(), CompositionError);
}

TEST(Composite, NestedComposites) {
  // outer = [ inner(+1, +1) -> *2 ]
  CompositePipe inner("inner");
  auto& a = inner.add<LambdaFunction>("a", [](Item x) {
    ++x.kind;
    return x;
  });
  auto& b = inner.add<LambdaFunction>("b", [](Item x) {
    ++x.kind;
    return x;
  });
  inner.connect(a, b);
  inner.set_entry(a);
  inner.set_exit(b);

  CompositePipe outer("outer");
  outer.embed(inner);
  auto& dbl = outer.add<LambdaFunction>("dbl", [](Item x) {
    x.kind *= 2;
    return x;
  });
  outer.connect(inner.exit(), 0, dbl, 0);
  outer.set_entry(inner.entry());
  outer.set_exit(dbl);
  EXPECT_EQ(outer.component_count(), 3u);

  rt::Runtime rtm;
  std::vector<Item> in;
  in.push_back(Item::token(5));
  VectorSource src("src", std::move(in));
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  Pipeline p;
  outer.splice_into(p);
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, outer.entry(), 0);
  p.connect(outer.exit(), 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrivals()[0].item.kind, 14);  // (5+1+1)*2
}

TEST(Composite, NetpipeBundleEqualsHandWiredPipeline) {
  rt::Runtime rtm;
  media::StreamConfig cfg;
  cfg.frames = 50;
  media::MpegFileSource src("m.mpg", cfg);
  ClockedPump pump("pump", 100.0);
  net::LinkConfig lc;
  lc.base_latency = rt::milliseconds(5);
  net::SimLink link(lc);
  net::NetpipeBundle netpipe("net", link, media::encode_frame,
                             media::decode_frame, "video", "server",
                             "client");
  media::MpegDecoder dec("dec");
  media::VideoDisplay display("display", 100.0);

  Pipeline p;
  netpipe.splice_into(p);
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, netpipe.entry(), 0);
  p.connect(netpipe.exit(), 0, dec, 0);
  p.connect(dec, 0, display, 0);

  Realization real(rtm, p);
  EXPECT_EQ(real.thread_count(), 2u);  // sender pump + receiver driver
  real.start();
  rtm.run();
  EXPECT_EQ(display.stats().displayed, 50u);
  EXPECT_EQ(display.stats().corrupt, 0u);
}

TEST(Composite, PlayoutBundleSmoothsJitter) {
  rt::Runtime rtm;
  media::StreamConfig cfg;
  cfg.frames = 200;
  media::MpegFileSource src("m.mpg", cfg);
  ClockedPump pump("pump", 30.0);
  net::LinkConfig lc;
  lc.base_latency = rt::milliseconds(10);
  lc.jitter = rt::milliseconds(20);
  net::SimLink link(lc);
  net::NetpipeBundle netpipe("net", link, media::encode_frame,
                             media::decode_frame, "video", "a", "b");
  media::MpegDecoder dec("dec");
  net::PlayoutBundle playout("playout", 16, 30.0);
  media::VideoDisplay display("display", 30.0);

  Pipeline p;
  netpipe.splice_into(p);
  playout.splice_into(p);
  p.connect(src, 0, pump, 0);
  p.connect(pump, 0, netpipe.entry(), 0);
  p.connect(netpipe.exit(), 0, dec, 0);
  p.connect(dec, 0, playout.entry(), 0);
  p.connect(playout.exit(), 0, display, 0);

  Realization real(rtm, p);
  real.start();
  rtm.run();
  EXPECT_GE(display.stats().displayed, 195u);
  EXPECT_LT(display.stats().mean_abs_jitter_ms, 1.0)
      << "playout bundle must absorb the 20 ms network jitter";
}

}  // namespace
}  // namespace infopipe
