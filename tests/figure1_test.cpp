// The paper's Figure 1, as an asserted integration test.
//
//   source -> pump -> drop-filter -> marshal -> [netpipe] -> unmarshal
//          -> decoder -> sensor -> buffer -> pump -> display
//
// Everything the paper's flagship diagram contains is exercised together:
// two pump-driven sections on two simulated nodes, a best-effort transport
// that drops under congestion, a consumer-side sensor feeding a
// producer-side filter through (latency-bearing) remote control events, the
// §2.2 reference-frame release protocol, and the consumer-side jitter
// buffer. The assertions pin the paper's qualitative claims.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"
#include "feedback/toolkit.hpp"
#include "media/mpeg.hpp"
#include "net/control_link.hpp"
#include "net/netpipe.hpp"

namespace infopipe {
namespace {

using media::FrameDropFilter;
using media::MpegDecoder;
using media::MpegFileSource;
using media::StreamConfig;
using media::VideoDisplay;

struct Figure1 {
  rt::Runtime rtm;
  StreamConfig cfg;
  MpegFileSource source;
  ClockedPump send_pump;
  FrameDropFilter filter;
  net::MarshalFilter marshal;
  net::SimLink link;
  net::NetSender tx;
  net::NetReceiver rx;
  net::UnmarshalFilter unmarshal;
  MpegDecoder decoder;
  fb::RateSensor sensor;
  Buffer jitter_buf;
  ClockedPump play_pump;
  VideoDisplay display;
  Pipeline pipe;

  Figure1()
      : cfg([] {
          StreamConfig c;
          c.frames = 600;  // 20 s at 30 fps
          return c;
        }()),
        source("movie.mpg", cfg),
        send_pump("send-pump", cfg.fps),
        filter("filter"),
        marshal("marshal", media::encode_frame, "video"),
        link([] {
          net::LinkConfig lc;
          lc.bandwidth_bps = 6e6;
          lc.base_latency = rt::milliseconds(30);
          lc.queue_capacity_bytes = 48 * 1024;
          return lc;
        }()),
        tx("tx", link, "producer-node"),
        rx("rx", link, "consumer-node"),
        unmarshal("unmarshal", media::decode_frame, "video"),
        decoder("decoder"),
        sensor("rate", 0.5, rt::milliseconds(500)),
        jitter_buf("jitter-buf", 8, FullPolicy::kDropOldest,
                   EmptyPolicy::kNil),
        play_pump("play-pump", cfg.fps),
        display("display", cfg.fps) {
    pipe.connect(source, 0, send_pump, 0);
    pipe.connect(send_pump, 0, filter, 0);
    pipe.connect(filter, 0, marshal, 0);
    pipe.connect(marshal, 0, tx, 0);
    pipe.connect(rx, 0, unmarshal, 0);
    pipe.connect(unmarshal, 0, decoder, 0);
    pipe.connect(decoder, 0, sensor, 0);
    pipe.connect(sensor, 0, jitter_buf, 0);
    pipe.connect(jitter_buf, 0, play_pump, 0);
    pipe.connect(play_pump, 0, display, 0);
  }
};

TEST(Figure1, PlansExactlyAsThePaperDraws) {
  Figure1 f;
  Plan p = plan(f.pipe);
  // Three drivers: the producer pump, the netpipe receiver, the play pump.
  EXPECT_EQ(p.sections.size(), 3u);
  // Every mid component is direct-callable: no coroutines anywhere.
  EXPECT_EQ(p.total_coroutines(), 0);
  EXPECT_EQ(p.total_threads(), 3);
  // Push/pull modes: producer side pushes, consumer tail pulls from buffer.
  EXPECT_EQ(p.hosted_info(f.filter)->mode, FlowMode::kPush);
  EXPECT_EQ(p.hosted_info(f.decoder)->mode, FlowMode::kPush);
  // Location property changes exactly at the netpipe.
  EXPECT_EQ(p.edge_spec.at(f.pipe.edge_into(f.display, 0))
                .get<std::string>(props::kLocation),
            "consumer-node");
  EXPECT_FALSE(p.edge_spec.at(f.pipe.edge_into(f.tx, 0))
                   .get<std::string>(props::kLocation)
                   .has_value());
}

TEST(Figure1, CleanNetworkPlaysEverythingOnTime) {
  Figure1 f;
  Realization real(f.rtm, f.pipe);
  real.start();
  f.rtm.run();
  const auto s = f.display.stats();
  EXPECT_EQ(s.displayed, 600u);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_LT(s.mean_abs_jitter_ms, 0.5);
  EXPECT_EQ(f.decoder.held_references(), 0u)
      << "the display's release events must free every reference frame";
  EXPECT_TRUE(f.display.eos());
  EXPECT_TRUE(real.finished());
}

TEST(Figure1, ControlledDroppingBeatsArbitraryDropping) {
  // Congestion from t=5s to the end; the controlled run pre-sets the drop
  // level (the closed-loop controller lives in the example/bench; here the
  // deterministic comparison is what matters).
  auto run = [](bool controlled) {
    Figure1 f;
    Realization real(f.rtm, f.pipe);
    net::RemoteControlLink uplink(f.link);
    real.start();
    f.rtm.run_until(rt::seconds(5));
    f.link.set_bandwidth(0.4e6);
    if (controlled) {
      // The consumer-side decision crosses the network as a control event.
      uplink.post(real, f.filter, Event{media::kEventDropLevel, 2});
    }
    f.rtm.run();
    return std::make_tuple(f.display.stats(), f.link.stats(),
                           f.filter.stats());
  };

  const auto [ctl_disp, ctl_link, ctl_filter] = run(true);
  const auto [arb_disp, arb_link, arb_filter] = run(false);

  // Controlled: the filter (not the network) sheds load...
  EXPECT_GT(ctl_filter.total_dropped(), 300u);
  EXPECT_LT(ctl_link.dropped_congestion, 10u);
  // ...I frames survive and almost nothing corrupts.
  EXPECT_EQ(ctl_disp.per_type[media::kKindI],
            600 / StreamConfig{}.gop.size());
  EXPECT_LT(ctl_disp.corrupt, 5u);

  // Arbitrary: the network drops blindly — I frames die, GOPs corrupt.
  EXPECT_GT(arb_link.dropped_congestion, 50u);
  EXPECT_LT(arb_disp.per_type[media::kKindI],
            600 / StreamConfig{}.gop.size());
  EXPECT_GT(arb_disp.corrupt, 50u);
}

TEST(Figure1, StartStopMidCongestion) {
  Figure1 f;
  Realization real(f.rtm, f.pipe);
  real.start();
  f.rtm.run_until(rt::seconds(3));
  real.stop();
  f.rtm.run_until(rt::seconds(4));
  const auto frozen = f.display.stats().displayed;
  f.rtm.run_until(rt::seconds(6));
  // In-flight network packets may still drain to the display briefly, but
  // the producer is paused, so the count stays (almost) frozen.
  EXPECT_LE(f.display.stats().displayed, frozen + 10);
  real.start();
  f.rtm.run();
  EXPECT_EQ(f.display.stats().displayed, 600u);
  EXPECT_EQ(f.display.stats().corrupt, 0u);
}

}  // namespace
}  // namespace infopipe
