// ip_replay tests: schedule record/replay, schedule fuzzing, and the
// vector-clock happens-before checker.
//
// The record→replay test is the tentpole made executable: a LIVE two-shard
// run (kernel threads, real clocks, pooling as configured, one mid-flow
// migration) is recorded into a trace, then re-executed on the manual
// lockstep substrate under virtual clocks with the trace driving shard
// step order and migration timing — and the per-flow digests must be
// bit-identical. The fuzzer tests then invert the direction: instead of
// reproducing one schedule they perturb many, asserting the digests never
// move (and that a deliberately schedule-sensitive scenario shrinks to a
// minimal failing decision prefix).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "replay/digest.hpp"
#include "replay/fuzzer.hpp"
#include "replay/hb.hpp"
#include "replay/hooks.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "replay/trace.hpp"
#include "shard/channel.hpp"
#include "shard/shard_group.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::replay {
namespace {

using namespace std::chrono_literals;

shard::ShardGroup::GroupOptions manual_opts() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  return opt;
}

// ---- trace format ----------------------------------------------------------

Trace sample_trace() {
  Trace t;
  t.meta.n_shards = 2;
  t.meta.flags = Trace::kFlagPooling | Trace::kFlagBatching;
  t.meta.seed = 42;
  t.meta.end_time_ns = rt::seconds(3);
  t.flows.push_back(Trace::Flow{"frames", 0xdeadbeefcafef00dull, 600});
  t.flows.push_back(Trace::Flow{"audio", 0x1234ull, 48000});
  Frame f;
  f.kind = static_cast<std::uint8_t>(FrameKind::kDispatch);
  f.shard = 0;
  f.aux32 = 400;
  f.t = 1000;
  f.a = 7;
  t.frames.push_back(f);
  f.kind = static_cast<std::uint8_t>(FrameKind::kChanPush);
  f.shard = 1;
  f.aux32 = 4;
  f.t = 2000;
  f.a = fnv1a("frames", 6);
  f.b = 17;
  t.frames.push_back(f);
  f.kind = static_cast<std::uint8_t>(FrameKind::kMigration);
  f.aux16 = static_cast<std::uint16_t>(MigrationPhase::kQuiesce);
  f.aux32 = 1;
  f.t = rt::seconds(1);
  f.a = 0;
  f.b = 1;
  t.frames.push_back(f);
  return t;
}

TEST(Trace, EncodeDecodeRoundTrip) {
  const Trace t = sample_trace();
  const std::vector<std::uint8_t> bytes = t.encode();
  const Trace d = Trace::decode(bytes.data(), bytes.size());

  EXPECT_EQ(d.meta.version, kTraceVersion);
  EXPECT_EQ(d.meta.n_shards, t.meta.n_shards);
  EXPECT_EQ(d.meta.flags, t.meta.flags);
  EXPECT_EQ(d.meta.seed, t.meta.seed);
  EXPECT_EQ(d.meta.end_time_ns, t.meta.end_time_ns);
  ASSERT_EQ(d.flows.size(), 2u);
  EXPECT_EQ(d.flows[0].name, "frames");
  EXPECT_EQ(d.flows[0].digest, 0xdeadbeefcafef00dull);
  EXPECT_EQ(d.flows[0].items, 600u);
  ASSERT_EQ(d.frames.size(), 3u);
  EXPECT_EQ(d.frames[1].frame_kind(), FrameKind::kChanPush);
  EXPECT_EQ(d.frames[1].a, fnv1a("frames", 6));
  EXPECT_EQ(d.frames[1].b, 17u);
  EXPECT_EQ(d.frames[2].aux16,
            static_cast<std::uint16_t>(MigrationPhase::kQuiesce));

  const std::vector<std::uint64_t> counts = d.kind_counts();
  EXPECT_EQ(counts[static_cast<int>(FrameKind::kDispatch)], 1u);
  EXPECT_EQ(counts[static_cast<int>(FrameKind::kChanPush)], 1u);
  EXPECT_EQ(counts[static_cast<int>(FrameKind::kMigration)], 1u);
}

TEST(Trace, RejectsBadMagicVersionAndTruncation) {
  const Trace t = sample_trace();
  std::vector<std::uint8_t> bytes = t.encode();

  std::vector<std::uint8_t> bad = bytes;
  bad[0] = 'X';
  EXPECT_THROW(Trace::decode(bad.data(), bad.size()), TraceError);

  bad = bytes;
  bad[4] = 0x7f;  // unknown version
  EXPECT_THROW(Trace::decode(bad.data(), bad.size()), TraceError);

  EXPECT_THROW(Trace::decode(bytes.data(), bytes.size() - 5), TraceError);
  EXPECT_THROW(Trace::decode(bytes.data(), 3), TraceError);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = testing::TempDir() + "/ip_replay_trace_test.bin";
  t.save(path);
  const Trace d = Trace::load(path);
  EXPECT_EQ(d.frames.size(), t.frames.size());
  EXPECT_EQ(d.flows.size(), t.flows.size());
  EXPECT_NE(d.summary().find("2 shards"), std::string::npos);
  EXPECT_THROW(Trace::load(path + ".does-not-exist"), TraceError);
}

// ---- the shared pipeline for record/replay and fuzzing ---------------------

/// Two sections over two shards with DigestProbes on both sides of the cut;
/// the flow is finite and fully deterministic under virtual clocks.
struct ProbedPipeline {
  CountingSource src;
  ClockedPump p1;
  DigestProbe up{"up"};
  Buffer buf{"buf", 32};
  ClockedPump p2;
  DigestProbe down{"down"};
  CollectorSink sink{"sink"};
  Pipeline pipe;
  std::optional<shard::ShardedRealization> sr;

  ProbedPipeline(shard::ShardGroup& g, std::uint64_t items, double hz)
      : src("src", items), p1("p1", hz), p2("p2", hz) {
    pipe.connect(src, 0, p1, 0);
    pipe.connect(p1, 0, up, 0);
    pipe.connect(up, 0, buf, 0);
    pipe.connect(buf, 0, p2, 0);
    pipe.connect(p2, 0, down, 0);
    pipe.connect(down, 0, sink, 0);
    sr.emplace(g, pipe);
  }

  [[nodiscard]] std::vector<Trace::Flow> flows() const {
    return {Trace::Flow{"up", up.digest(), up.items()},
            Trace::Flow{"down", down.digest(), down.items()}};
  }
};

// ---- record -> replay ------------------------------------------------------

TEST(RecordReplay, LiveRunWithMigrationReplaysBitIdentically) {
  ScheduleRecorder rec;
  if (!config().record) {
    EXPECT_FALSE(rec.install());
    GTEST_SKIP() << "INFOPIPE_RECORD=off";
  }

  Trace trace;
  {
    shard::ShardGroup group(2);
    ProbedPipeline pl(group, 600, 400.0);
    ASSERT_EQ(pl.sr->section_count(), 2u);
    rec.attach(group);
    ASSERT_TRUE(rec.install());
    group.launch();
    pl.sr->start();
    // One mid-flow migration, away and recorded; ~1/3 into the stream.
    std::this_thread::sleep_for(500ms);
    const int home = pl.sr->shard_of_section(1);
    pl.sr->migrate_section(1, 1 - home);
    ASSERT_TRUE(pl.sr->wait_finished(30000ms));
    group.stop();
    rec.uninstall();
    for (const Trace::Flow& f : pl.flows()) {
      rec.note_flow(f.name, f.digest, f.items);
    }
    trace = rec.finish();
    EXPECT_EQ(pl.down.items(), 600u);
  }

  EXPECT_EQ(trace.meta.n_shards, 2);
  EXPECT_EQ(trace.meta.seed, config().seed);
  const std::vector<std::uint64_t> counts = trace.kind_counts();
  EXPECT_GT(counts[static_cast<int>(FrameKind::kDispatch)], 0u);
  EXPECT_GT(counts[static_cast<int>(FrameKind::kChanPush)], 0u);
  EXPECT_GT(counts[static_cast<int>(FrameKind::kChanPop)], 0u);
  // quiesce + transfer + resume of the one migration
  EXPECT_EQ(counts[static_cast<int>(FrameKind::kMigration)], 3u);
  ASSERT_EQ(trace.flows.size(), 2u);

  Replayer rp(trace);
  const ReplayResult result = rp.run([](shard::ShardGroup& g) {
    auto st = std::make_shared<ProbedPipeline>(g, 600, 400.0);
    st->sr->start();
    Replayer::Build b;
    b.state = st;
    b.real = &*st->sr;
    b.flows = [st] { return st->flows(); };
    return b;
  });
  EXPECT_TRUE(result.ok) << result.summary;
  EXPECT_EQ(result.migrations_applied, 1);
  EXPECT_GT(result.steps, 0u);
}

TEST(RecordReplay, RecorderPublishesReplayMetrics) {
  ScheduleRecorder rec;
  if (!rec.install()) GTEST_SKIP() << "INFOPIPE_RECORD=off";
  rec.note_mark(7);
  rec.note_mark(8);
  rec.uninstall();

  obs::MetricsRegistry reg;
  rec.publish(reg);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricValue* total = snap.find("replay.frames.total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 2u);
  const obs::MetricValue* marks = snap.find("replay.frames.mark");
  ASSERT_NE(marks, nullptr);
  EXPECT_EQ(marks->count, 2u);
  const obs::MetricValue* dropped = snap.find("replay.frames.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->count, 0u);
}

TEST(RecordSwitch, OffMakesInstallANoOpAndLeavesTapsDead) {
  InfopipeConfig& c = config();
  const bool saved = c.record;
  c.record = false;
  {
    ScheduleRecorder rec;
    EXPECT_FALSE(rec.install());
    EXPECT_FALSE(rec.installed());
    EXPECT_EQ(tap_sink(), nullptr);
    // Taps are live code but observe nothing.
    note_dispatch(nullptr, 1, 2);
    note_shared_access(&c, true);
    EXPECT_EQ(rec.frames_recorded(), 0u);
  }
  c.record = saved;
}

// ---- schedule fuzzing ------------------------------------------------------

/// The fuzz scenario: the ProbedPipeline under manual lockstep, with the
/// plan perturbing (a) the per-round shard visit order, (b) the step-grid
/// boundaries (which batches timer deliveries differently), and (c) the
/// timing of a there-and-back mid-flow migration. Pure function of the
/// plan; the identity plan is the undisturbed lockstep run.
DigestMap fuzz_scenario(const SchedulePlan& plan) {
  shard::ShardGroup group(2, manual_opts());
  ProbedPipeline pl(group, 400, 200.0);
  const int home = pl.sr->shard_of_section(1);
  const int away = 1 - home;
  pl.sr->start();

  const rt::Time mig1 = rt::seconds(1) + plan.jitter(1001, rt::milliseconds(90));
  const rt::Time mig2 = rt::seconds(2) + plan.jitter(1002, rt::milliseconds(90));
  bool moved = false;
  bool returned = false;
  std::size_t round = 0;
  for (rt::Time t = rt::milliseconds(50); t <= rt::seconds(4);
       t += rt::milliseconds(50)) {
    // Delay timer delivery: the grid point shifts forward by up to 20 ms
    // (always < the 50 ms stride, so time stays monotonic).
    const rt::Time target =
        t + (plan.decision(2000 + round) % rt::milliseconds(20));
    group.step_until(target, plan.order(round, group.size()));
    ++round;
    if (!moved && target >= mig1) {
      pl.sr->migrate_section(1, away);
      moved = true;
    }
    if (!returned && target >= mig2) {
      pl.sr->migrate_section(1, home);
      returned = true;
    }
  }
  EXPECT_TRUE(pl.sr->finished());

  DigestMap d;
  d["up"] = pl.up.digest();
  d["up.items"] = pl.up.items();
  d["down"] = pl.down.digest();
  d["down.items"] = pl.down.items();
  return d;
}

int fuzz_seed_count() {
  if (const char* e = std::getenv("INFOPIPE_FUZZ_SEEDS")) {
    const int n = std::atoi(e);
    if (n > 0) return n;
  }
  return 25;
}

TEST(ScheduleFuzzer, PerturbedSchedulesStayLockstepEquivalent) {
  const int n = fuzz_seed_count();
  const ScheduleFuzzer fuzzer(fuzz_scenario);
  const FuzzReport rep = fuzzer.run(config().seed, n);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.schedules, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rep.baseline.at("down.items"), 400u);
}

TEST(ScheduleFuzzer, ShrinksAFailingSeedToItsMinimalDecisionPrefix) {
  // Synthetic schedule-SENSITIVE scenario: diverges iff decision word 5 is
  // live and lands in a residue class (~1/3 of seeds). The minimal failing
  // prefix is therefore exactly 6 — decisions 0..4 are irrelevant.
  const Scenario sensitive = [](const SchedulePlan& p) {
    DigestMap d;
    d["flow"] = 42;
    const std::uint64_t dec = p.decision(5);
    if (dec != 0 && dec % 3 == 0) d["flow"] = 43;
    return d;
  };
  const ScheduleFuzzer fuzzer(sensitive);
  const FuzzReport rep = fuzzer.run(config().seed + 7, 64, 16);
  ASSERT_FALSE(rep.ok()) << "expected ~1/3 of 64 seeds to diverge";
  EXPECT_EQ(rep.shrunk_prefix, 6u) << rep.summary();
  // And the shrunk plan indeed still fails while one decision fewer passes.
  SchedulePlan shrunk{rep.shrunk_seed, rep.shrunk_prefix};
  EXPECT_NE(sensitive(shrunk), rep.baseline);
  SchedulePlan shorter{rep.shrunk_seed, rep.shrunk_prefix - 1};
  EXPECT_EQ(sensitive(shorter), rep.baseline);
}

TEST(SchedulePlan, DecisionsAreDeterministicAndOrdersArePermutations) {
  const SchedulePlan a{12345, SchedulePlan::kNoPrefix};
  const SchedulePlan b{12345, SchedulePlan::kNoPrefix};
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(a.decision(i), b.decision(i));
  }
  EXPECT_EQ(SchedulePlan{}.decision(3), 0u);  // identity plan
  for (std::size_t round = 0; round < 16; ++round) {
    const std::vector<int> o = a.order(round, 4);
    ASSERT_EQ(o.size(), 4u);
    std::vector<bool> seen(4, false);
    for (const int s : o) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 4);
      EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
      seen[static_cast<std::size_t>(s)] = true;
    }
  }
  for (std::size_t i = 0; i < 64; ++i) {
    const rt::Time j = a.jitter(i, rt::milliseconds(10));
    EXPECT_GE(j, -rt::milliseconds(10));
    EXPECT_LE(j, rt::milliseconds(10));
  }
}

// ---- happens-before checking -----------------------------------------------

TEST(HappensBefore, ChannelEdgeOrdersCrossThreadAccess) {
  HBChecker hb;
  const void* chan = &hb;  // any stable key
  int obj = 0;
  std::atomic<bool> a_done{false};

  std::thread ta([&] {
    hb.on_shared_access(&obj, true);
    hb.on_chan_push(chan, 1, 0, 1, 0);
    a_done.store(true);
  });
  std::thread tb([&] {
    while (!a_done.load()) std::this_thread::yield();
    hb.on_chan_pop(chan, 1, 0, 1, 1);
    hb.on_shared_access(&obj, true);
  });
  ta.join();
  tb.join();

  EXPECT_TRUE(hb.violations().empty()) << hb.report();
  EXPECT_GE(hb.edges_observed(), 2u);
  EXPECT_EQ(hb.accesses_checked(), 2u);
}

TEST(HappensBefore, StashEdgeOrdersForeignReturnAgainstDrain) {
  HBChecker hb;
  const void* pool = &hb;
  int obj = 0;
  std::atomic<bool> a_done{false};

  std::thread ta([&] {
    hb.on_shared_access(&obj, true);
    hb.on_stash(pool, StashEdge::kReturn, 1);
    a_done.store(true);
  });
  std::thread tb([&] {
    while (!a_done.load()) std::this_thread::yield();
    hb.on_stash(pool, StashEdge::kDrain, 1);
    hb.on_shared_access(&obj, true);
  });
  ta.join();
  tb.join();

  EXPECT_TRUE(hb.violations().empty()) << hb.report();
}

TEST(HappensBefore, UnorderedCrossThreadWriteIsFlagged) {
  HBChecker hb;
  int obj = 0;
  std::atomic<bool> a_done{false};

  std::thread ta([&] {
    hb.on_shared_access(&obj, true);
    a_done.store(true);
  });
  std::thread tb([&] {
    // Real-time ordering exists (we wait for A), but NO recorded edge
    // carries it — exactly the bug class the checker exists to flag.
    while (!a_done.load()) std::this_thread::yield();
    hb.on_shared_access(&obj, true);
  });
  ta.join();
  tb.join();

  const std::vector<HBChecker::Violation> v = hb.violations();
  ASSERT_EQ(v.size(), 1u) << hb.report();
  EXPECT_EQ(v[0].obj, &obj);
  EXPECT_TRUE(v[0].write_a && v[0].write_b);
  EXPECT_NE(v[0].thread_a, v[0].thread_b);
}

TEST(HappensBefore, ReadsNeverRaceAndPartialPopsStayPending) {
  HBChecker hb;
  const void* chan = &hb;
  int obj = 0;
  std::atomic<int> stage{0};

  std::thread ta([&] {
    hb.on_shared_access(&obj, false);  // read
    hb.on_chan_push(chan, 1, 0, 4, 0);  // positions [0,4)
    stage.store(1);
    while (stage.load() != 2) std::this_thread::yield();
    hb.on_shared_access(&obj, true);  // unordered write vs B's write
  });
  std::thread tb([&] {
    while (stage.load() != 1) std::this_thread::yield();
    hb.on_shared_access(&obj, false);  // read vs read: never a race
    hb.on_chan_pop(chan, 1, 0, 2, 1);  // only [0,2): edge NOT complete
    hb.on_shared_access(&obj, true);   // write unordered vs A's push
    stage.store(2);
  });
  ta.join();
  tb.join();

  // B's write is not ordered after A's read (the partial pop joined no
  // edge), and A's final write is not ordered after B's — both flagged.
  EXPECT_FALSE(hb.violations().empty()) << hb.report();
}

TEST(HappensBefore, LiveShardChannelTrafficIsRaceFreeByConstruction) {
  HBChecker hb;
  hb.install();
  {
    shard::ShardGroup group(2);
    group.launch();
    shard::ShardChannel ch("hb.live", 8);
    ch.bind_producer(group.runtime(0), 0);
    ch.bind_consumer(group.runtime(1), 1);
    int obj = 0;
    group.run_on(0, [&] {
      note_shared_access(&obj, true);
      Item x = Item::token(1);
      ASSERT_TRUE(ch.try_push(x));
    });
    group.run_on(1, [&] {
      ASSERT_TRUE(ch.try_pop().has_value());
      note_shared_access(&obj, true);
    });
    group.stop();
  }
  hb.uninstall();
  EXPECT_TRUE(hb.violations().empty()) << hb.report();
}

TEST(HappensBefore, SeededUnorderedCrossShardAccessIsFlaggedLive) {
  HBChecker hb;
  hb.install();
  {
    shard::ShardGroup group(2);
    group.launch();
    int shared_counter = 0;
    // The deliberate bug: both shards touch shared_counter with no channel
    // or stash edge between them. run_on's own doorbell messages are not
    // recorded HB edges — the middleware's data-plane discipline (all
    // cross-shard state rides channels/pools) is exactly what is violated.
    group.run_on(0, [&] { note_shared_access(&shared_counter, true); });
    group.run_on(1, [&] { note_shared_access(&shared_counter, true); });
    group.stop();
  }
  hb.uninstall();
  const std::vector<HBChecker::Violation> v = hb.violations();
  ASSERT_FALSE(v.empty()) << hb.report();
  EXPECT_TRUE(v[0].write_a && v[0].write_b);
}

}  // namespace
}  // namespace infopipe::replay
