// Microlanguage tests: parsing, the standard library, error reporting with
// line numbers, and full parse -> realize -> run integration.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"
#include "lang/microlang.hpp"
#include "media/mpeg.hpp"

namespace infopipe::lang {
namespace {

TEST(MicroLang, BuildsAndRunsTheQuickstartPlayer) {
  MicroLang ml;
  Assembly a = ml.parse(R"(
    # the paper's local video player
    let src     = mpeg_file(test.mpg, 60, 30)
    let decode  = decoder()
    let pump    = pump(30)
    let display = display(30)
    chain src -> decode -> pump -> display
  )");
  EXPECT_EQ(a.components.size(), 4u);

  rt::Runtime rtm;
  Realization real(rtm, a.pipeline);
  EXPECT_EQ(real.thread_count(), 1u);
  real.start();
  rtm.run();
  EXPECT_EQ(a.as<media::VideoDisplay>("display").stats().displayed, 60u);
}

TEST(MicroLang, MultiPortConnectSyntax) {
  MicroLang ml;
  Assembly a = ml.parse(R"(
    let src  = counting_source(10)
    let pump = freerunning_pump()
    let tee  = multicast(2)
    let s1   = collector()
    let s2   = collector()
    chain src -> pump
    connect pump.0 -> tee.0
    connect tee.0 -> s1.0
    connect tee.1 -> s2.0
  )");
  rt::Runtime rtm;
  Realization real(rtm, a.pipeline);
  real.start();
  rtm.run();
  EXPECT_EQ(a.as<CollectorSink>("s1").count(), 10u);
  EXPECT_EQ(a.as<CollectorSink>("s2").count(), 10u);
}

TEST(MicroLang, BufferPoliciesByName) {
  MicroLang ml;
  Assembly a = ml.parse(
      "let b = buffer(5, drop-oldest, nil)\n");
  auto& b = a.as<Buffer>("b");
  EXPECT_EQ(b.capacity(), 5u);
  EXPECT_EQ(b.full_policy(), FullPolicy::kDropOldest);
  EXPECT_EQ(b.empty_policy(), EmptyPolicy::kNil);
}

TEST(MicroLang, CommentsAndBlankLines) {
  MicroLang ml;
  Assembly a = ml.parse(R"(

    # full-line comment
    let s = sink()   # trailing comment

  )");
  EXPECT_EQ(a.components.size(), 1u);
}

TEST(MicroLang, CustomRegisteredType) {
  MicroLang ml;
  ml.register_type("doubler", [](const std::string& n,
                                 const std::vector<std::string>&) {
    return std::make_unique<LambdaFunction>(n, [](Item x) {
      x.kind *= 2;
      return x;
    });
  });
  EXPECT_TRUE(ml.has_type("doubler"));
  Assembly a = ml.parse(R"(
    let src  = counting_source(3)
    let d    = doubler()
    let pump = freerunning_pump()
    let out  = collector()
    chain src -> d -> pump -> out
  )");
  rt::Runtime rtm;
  Realization real(rtm, a.pipeline);
  real.start();
  rtm.run();
  EXPECT_EQ(a.as<CollectorSink>("out").count(), 3u);
}

TEST(MicroLang, DistributedPipelineWithLinkAndNetpipe) {
  MicroLang ml;
  Assembly a = ml.parse(R"(
    # Figure 1's skeleton, entirely in the microlanguage.
    let movie   = mpeg_file(m.mpg, 90, 30)
    let pump    = pump(30)
    let wire    = link(6e6, 25)          # 6 Mbps, 25 ms
    let enc     = marshal(video)
    let tx      = net_sender(wire, server)
    let rx      = net_receiver(wire, client)
    let dec_b   = unmarshal(video)
    let decode  = decoder()
    let screen  = display(30)
    chain movie -> pump -> enc -> tx
    chain rx -> dec_b -> decode -> screen
  )");
  ASSERT_EQ(a.links.size(), 1u);
  EXPECT_EQ(a.link("wire").config().base_latency, rt::milliseconds(25));

  rt::Runtime rtm;
  Realization real(rtm, a.pipeline);
  EXPECT_EQ(real.thread_count(), 2u);
  real.start();
  rtm.run();
  EXPECT_EQ(a.as<media::VideoDisplay>("screen").stats().displayed, 90u);
  EXPECT_EQ(a.as<media::VideoDisplay>("screen").stats().corrupt, 0u);
}

TEST(MicroLangErrors, NetSenderNeedsADeclaredLink) {
  MicroLang ml;
  EXPECT_THROW((void)ml.parse("let tx = net_sender(nolink, a)\n"),
               ParseError);
}

TEST(MicroLangErrors, UnknownCodec) {
  MicroLang ml;
  EXPECT_THROW((void)ml.parse("let m = marshal(interpretive-dance)\n"),
               ParseError);
}

// ---------- error reporting ---------------------------------------------------

void expect_error_at(const std::string& program, int line,
                     const std::string& fragment) {
  MicroLang ml;
  try {
    (void)ml.parse(program);
    FAIL() << "expected ParseError containing '" << fragment << "'";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(MicroLangErrors, UnknownType) {
  expect_error_at("let x = warp_drive()\n", 1, "unknown component type");
}

TEST(MicroLangErrors, UnknownNameInChain) {
  expect_error_at("let s = sink()\nchain ghost -> s\n", 2, "unknown component");
}

TEST(MicroLangErrors, DuplicateName) {
  expect_error_at("let s = sink()\nlet s = sink()\n", 2, "duplicate");
}

TEST(MicroLangErrors, BadStatement) {
  expect_error_at("frobnicate a b\n", 1, "unknown statement");
}

TEST(MicroLangErrors, MissingParen) {
  expect_error_at("let s = sink(\n", 1, "missing ')'");
}

TEST(MicroLangErrors, BadPortReference) {
  expect_error_at("let s = sink()\nlet p = pump(10)\nconnect p.x -> s.0\n", 3,
                  "bad port");
}

TEST(MicroLangErrors, CompositionErrorsCarryLineNumbers) {
  // pump -> pump is a polarity error; it must surface as a ParseError with
  // the right line.
  expect_error_at(
      "let a = pump(10)\nlet b = pump(10)\nconnect a.0 -> b.0\n", 3,
      "polarity");
}

TEST(MicroLangErrors, BadNumericArgument) {
  expect_error_at("let p = pump(fast)\n", 1, "expected a number");
}

TEST(MicroLang, ChainSyntaxAcceptsExplicitPorts) {
  MicroLang ml;
  Assembly a = ml.parse(R"(
    let src  = counting_source(6)
    let pump = freerunning_pump()
    let sw   = multicast(2)
    let s1   = collector()
    let s2   = collector()
    chain src -> pump -> sw
    chain sw.0 -> s1
    chain sw.1 -> s2
  )");
  rt::Runtime rtm;
  Realization real(rtm, a.pipeline);
  real.start();
  rtm.run();
  EXPECT_EQ(a.as<CollectorSink>("s1").count(), 6u);
  EXPECT_EQ(a.as<CollectorSink>("s2").count(), 6u);
}

TEST(MicroLang, StandardLibraryIsComplete) {
  MicroLang ml;
  for (const char* t :
       {"counting_source", "identity", "pump", "freerunning_pump",
        "adaptive_pump", "buffer", "multicast", "merge", "balance", "sink",
        "collector", "mpeg_file", "decoder", "drop_filter", "resizer",
        "display", "tone", "audio_mixer", "audio_device"}) {
    EXPECT_TRUE(ml.has_type(t)) << t;
  }
}

}  // namespace
}  // namespace infopipe::lang
