// Control-event semantics tests (§2.2, §3.2, §4):
//  * events are delivered while a component is blocked in a push or pull,
//  * events queued during data processing are delivered as soon as the data
//    function finishes, never concurrently with it,
//  * local control flows upstream/downstream between adjacent components,
//  * broadcasts reach every component.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

constexpr int kEvProbe = kEventUser + 1;
constexpr int kEvNote = kEventUser + 2;

/// Sink that records the relative order of data items and control events.
class OrderRecordingSink : public PassiveSink {
 public:
  explicit OrderRecordingSink(std::string name)
      : PassiveSink(std::move(name)) {}

  std::vector<std::string> log;

 protected:
  void consume(Item x) override {
    log.push_back("item:" + std::to_string(x.seq));
  }
  void handle_event(const Event& e) override {
    if (e.type == kEvProbe) log.push_back("event");
  }
};

TEST(Events, BroadcastReachesEveryComponent) {
  rt::Runtime rtm;
  CountingSource src("src", 1);
  IdentityFunction fn("fn");
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> fn >> pump >> sink;
  Realization real(rtm, ch.pipeline());

  int heard = 0;
  class Probe : public IdentityFunction {
   public:
    explicit Probe(int* h) : IdentityFunction("probe"), heard_(h) {}
    void handle_event(const Event& e) override {
      if (e.type == kEvProbe) ++*heard_;
    }

   private:
    int* heard_;
  };
  // Rebuild with probes in several positions.
  rt::Runtime rtm2;
  CountingSource src2("src2", 1);
  Probe p1(&heard), p2(&heard);
  FreeRunningPump pump2("pump2");
  CollectorSink sink2("sink2");
  auto ch2 = src2 >> p1 >> pump2 >> p2 >> sink2;
  Realization real2(rtm2, ch2.pipeline());
  real2.post_event(Event{kEvProbe});
  rtm2.run();
  EXPECT_EQ(heard, 2);
}

TEST(Events, DeliveredWhileBlockedInPush) {
  // A pump blocked pushing into a full buffer must still handle control
  // events — the paper's marquee scenario.
  rt::Runtime rtm;
  CountingSource src("src", 100);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 2, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 10.0);  // very slow: fill blocks quickly
  OrderRecordingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(150));  // fill is now blocked (buffer full)
  EXPECT_GT(buf.stats().put_blocks, 0u);

  bool handled = false;
  class Flag : public IdentityFunction {
   public:
    Flag() : IdentityFunction("flag") {}
  };
  // Send a probe to the SOURCE-side section (hosted on the blocked thread).
  real.post_event_to(src, Event{kEvProbe});
  class SrcProbe {};
  // The source has no handler; use the buffer instead: flush it, which both
  // exercises dispatch on the blocked thread and unblocks the writer.
  (void)handled;
  real.post_event_to(buf, Event{kEventFlush});
  rtm.run_until(rt::milliseconds(200));
  // The flush emptied the buffer even though both adjacent pumps were busy
  // or blocked: the event handler ran on a thread blocked in push.
  EXPECT_GT(buf.stats().drops, 0u) << "flush did not run while blocked";
}

TEST(Events, QueuedDuringDataProcessingDeliveredAfter) {
  // A component posts an event to ITSELF while processing data; the handler
  // must run after the data function returns, never reentrantly.
  rt::Runtime rtm;
  std::vector<std::string> log;

  class SelfPoker : public Consumer {
   public:
    SelfPoker(std::vector<std::string>* log) : Consumer("poker"), log_(log) {}

   protected:
    void push(Item x) override {
      log_->push_back("push-begin:" + std::to_string(x.seq));
      broadcast(Event{kEvNote});  // queued, not handled inline
      log_->push_back("push-end:" + std::to_string(x.seq));
      push_next(std::move(x));
    }
    void handle_event(const Event& e) override {
      if (e.type == kEvNote) log_->push_back("note");
    }

   private:
    std::vector<std::string>* log_;
  };

  CountingSource src("src", 2);
  FreeRunningPump pump("pump");
  SelfPoker poker(&log);
  CollectorSink sink("sink");
  auto ch = src >> pump >> poker >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  // Every push-begin is followed by its push-end before any "note" lands in
  // between (no reentrancy), and each note is delivered before the next data
  // item's processing starts (§3.2: "delivered as soon as the data
  // processing is done").
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], "push-begin:0");
  EXPECT_EQ(log[1], "push-end:0");
  EXPECT_EQ(log[2], "note");
  EXPECT_EQ(log[3], "push-begin:1");
  EXPECT_EQ(log[4], "push-end:1");
  EXPECT_EQ(log[5], "note");
}

TEST(Events, LocalControlUpstream) {
  // The paper's resize scenario: the display tells the component directly
  // upstream about a new window size.
  rt::Runtime rtm;

  class Resizer : public FunctionComponent {
   public:
    Resizer() : FunctionComponent("resizer") {}
    int width = 0;

   protected:
    Item convert(Item x) override {
      x.kind = width;  // stamp current width on each frame
      return x;
    }
    void handle_event(const Event& e) override {
      if (e.type == kEventWindowResize) width = *e.get<int>();
    }
  };

  class ResizingDisplay : public PassiveSink {
   public:
    ResizingDisplay() : PassiveSink("display") {}
    std::vector<int> widths;

   protected:
    void consume(Item x) override {
      widths.push_back(x.kind);
      if (x.seq == 2) {
        // "User" resizes the window after the third frame.
        control_upstream(Event{kEventWindowResize, 640});
      }
    }
  };

  CountingSource src("src", 8);
  ClockedPump pump("pump", 100.0);
  Resizer resizer;
  ResizingDisplay display;
  auto ch = src >> pump >> resizer >> display;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(display.widths.size(), 8u);
  EXPECT_EQ(display.widths[0], 0);
  EXPECT_EQ(display.widths[2], 0);
  // The resize lands between pump cycles; later frames carry the new width.
  EXPECT_EQ(display.widths[4], 640);
  EXPECT_EQ(display.widths[7], 640);
}

TEST(Events, LocalControlDownstreamFrameRelease) {
  // The paper's decoder scenario, §2.2: a decoder passes frames downstream
  // that it still needs as reference frames; a downstream component tells it
  // when the shared frame can be released.
  rt::Runtime rtm;

  class RefDecoder : public FunctionComponent {
   public:
    RefDecoder() : FunctionComponent("decoder") {}
    std::vector<Item> refs;      // frames still referenced
    int releases_handled = 0;

   protected:
    Item convert(Item x) override {
      Item frame = Item::of<std::string>("frame" + std::to_string(x.seq));
      frame.seq = x.seq;
      refs.push_back(frame);  // keep as reference
      return frame;           // share it downstream
    }
    void handle_event(const Event& e) override {
      if (e.type == kEventFrameRelease) {
        const auto seq = static_cast<std::uint64_t>(*e.get<int>());
        std::erase_if(refs, [seq](const Item& f) { return f.seq <= seq; });
        ++releases_handled;
      }
    }
  };

  class ReleasingSink : public PassiveSink {
   public:
    ReleasingSink() : PassiveSink("sink") {}
    int consumed = 0;

   protected:
    void consume(Item x) override {
      ++consumed;
      // Done with everything up to this frame.
      control_upstream(Event{kEventFrameRelease, static_cast<int>(x.seq)});
    }
  };

  CountingSource src("src", 5);
  ClockedPump pump("pump", 100.0);
  RefDecoder dec;
  ReleasingSink sink;
  auto ch = src >> pump >> dec >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.consumed, 5);
  EXPECT_EQ(dec.releases_handled, 5);
  EXPECT_TRUE(dec.refs.empty()) << "reference frames leaked";
}

TEST(Events, EventListenerSeesBroadcastsIncludingEos) {
  rt::Runtime rtm;
  CountingSource src("src", 2);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  std::vector<int> seen;
  real.set_event_listener([&](const Event& e) { seen.push_back(e.type); });
  real.start();
  rtm.run();
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen.front(), kEventStart);
  EXPECT_EQ(seen.back(), kEventEndOfStream);
}

TEST(Events, ControlReachesCoroutineHostedComponent) {
  // A component running as a coroutine (active style) receives control on
  // its own thread, serialized with its data processing.
  rt::Runtime rtm;

  class TogglingActive : public ActiveComponent {
   public:
    TogglingActive() : ActiveComponent("toggler") {}
    int marker = 0;

   protected:
    void run() override {
      for (;;) {
        Item x = pull_prev();
        x.kind = marker;
        push_next(std::move(x));
      }
    }
    void handle_event(const Event& e) override {
      if (e.type == kEvProbe) marker = *e.get<int>();
    }
  };

  CountingSource src("src", 20);
  ClockedPump pump("pump", 100.0);
  TogglingActive act;
  CollectorSink sink("sink");
  auto ch = src >> pump >> act >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(55));  // ~6 items through
  real.post_event_to(act, Event{kEvProbe, 7});
  rtm.run();
  ASSERT_EQ(sink.count(), 20u);
  EXPECT_EQ(sink.arrivals()[2].item.kind, 0);
  EXPECT_EQ(sink.arrivals()[15].item.kind, 7)
      << "control event did not reach the coroutine";
}

}  // namespace
}  // namespace infopipe
