// Stress and edge-case tests for the user-level thread package: timer
// ordering properties, nested synchronous calls, failure injection, stack
// discipline, and scheduler fairness under load.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "rt/runtime.hpp"

namespace infopipe::rt {
namespace {

TEST(RtStress, TimersFireInTimeOrderRegardlessOfInsertion) {
  // The case seed is offset by INFOPIPE_SEED (core/config.hpp) so the whole
  // randomized sweep re-rolls from one env var; the default base (1)
  // reproduces the historical sequences exactly.
  const unsigned base = static_cast<unsigned>(config().seed) - 1u;
  for (unsigned seed = base; seed < base + 20; ++seed) {
    Runtime rt;
    std::vector<Time> fired;
    const ThreadId sink = rt.spawn("sink", kPriorityData,
                                   [&](Runtime& r, Message) -> CodeResult {
                                     fired.push_back(r.now());
                                     return CodeResult::kContinue;
                                   });
    std::mt19937 rng(seed);
    std::vector<Time> times;
    for (int i = 0; i < 100; ++i) {
      times.push_back(microseconds(
          std::uniform_int_distribution<int>(1, 100000)(rng)));
    }
    for (Time t : times) rt.send_at(t, sink, Message{1, MsgClass::kTimer});
    rt.run();
    ASSERT_EQ(fired.size(), times.size());
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end())) << "seed " << seed;
    std::sort(times.begin(), times.end());
    EXPECT_EQ(fired, times) << "seed " << seed;
  }
}

TEST(RtStress, EqualTimersFireFifo) {
  Runtime rt;
  std::vector<int> order;
  const ThreadId sink = rt.spawn("sink", kPriorityData,
                                 [&](Runtime&, Message m) -> CodeResult {
                                   order.push_back(m.type);
                                   return CodeResult::kContinue;
                                 });
  for (int i = 0; i < 10; ++i) {
    rt.send_at(milliseconds(5), sink, Message{i, MsgClass::kTimer});
  }
  rt.run();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(RtStress, NestedSynchronousCallsThroughAChain) {
  // A calls B calls C calls D; replies unwind in reverse. Priority
  // inheritance must keep the whole chain runnable even with a busy
  // mid-priority thread.
  Runtime rt;
  std::vector<std::string> trace;
  constexpr int kDepth = 6;
  std::vector<ThreadId> chain(kDepth);
  for (int i = kDepth - 1; i >= 0; --i) {
    const bool last = i == kDepth - 1;
    ThreadId next = last ? kNoThread : chain[static_cast<std::size_t>(i + 1)];
    chain[static_cast<std::size_t>(i)] = rt.spawn(
        "link" + std::to_string(i), kPriorityIdle,
        [&, i, next, last](Runtime& r, Message m) -> CodeResult {
          trace.push_back("enter" + std::to_string(i));
          if (!last) {
            (void)r.call(next, Message{m.type, MsgClass::kData});
          }
          trace.push_back("exit" + std::to_string(i));
          if (m.request_id != 0) r.reply(m, Message{0, MsgClass::kReply});
          return CodeResult::kContinue;
        });
  }
  ThreadId noisy = rt.spawn("noisy", kPriorityData,
                            [&](Runtime&, Message) -> CodeResult {
                              trace.push_back("noisy");
                              return CodeResult::kTerminate;
                            });
  ThreadId driver = rt.spawn(
      "driver", kPriorityControl, [&](Runtime& r, Message) -> CodeResult {
        (void)r.call(chain[0], Message{7, MsgClass::kData});
        trace.push_back("driver-done");
        return CodeResult::kTerminate;
      });
  rt.send(driver, Message{});
  rt.send(noisy, Message{});
  rt.run();
  // The whole chain runs before the mid-priority noisy thread (inheritance
  // propagates hop by hop because each caller donates its *effective*
  // priority).
  std::vector<std::string> expect;
  for (int i = 0; i < kDepth; ++i) expect.push_back("enter" + std::to_string(i));
  for (int i = kDepth - 1; i >= 0; --i) {
    expect.push_back("exit" + std::to_string(i));
  }
  expect.push_back("driver-done");
  expect.push_back("noisy");
  EXPECT_EQ(trace, expect);
}

TEST(RtStress, ManyThreadsManyMessagesComplete) {
  Runtime rt;
  constexpr int kThreads = 200;
  constexpr int kMessagesEach = 50;
  std::uint64_t received = 0;
  std::vector<ThreadId> ids;
  for (int i = 0; i < kThreads; ++i) {
    ids.push_back(rt.spawn("w" + std::to_string(i), i % 5,
                           [&](Runtime&, Message) -> CodeResult {
                             ++received;
                             return CodeResult::kContinue;
                           }));
  }
  for (int m = 0; m < kMessagesEach; ++m) {
    for (ThreadId id : ids) rt.send(id, Message{m, MsgClass::kData});
  }
  rt.run();
  EXPECT_EQ(received,
            static_cast<std::uint64_t>(kThreads) * kMessagesEach);
  EXPECT_EQ(rt.live_threads(), static_cast<std::size_t>(kThreads));
}

TEST(RtStress, DeepStacksDoNotCorrupt) {
  // Recursion close to (but under) the stack size, on several threads whose
  // stacks are adjacent mmap regions; the guard pages keep them apart.
  Runtime rt;
  int completed = 0;
  std::function<std::uint64_t(std::uint64_t, int)> deep =
      [&](std::uint64_t acc, int depth) -> std::uint64_t {
    if (depth == 0) return acc;
    // Burn some stack per frame.
    volatile char pad[512];
    pad[0] = static_cast<char>(depth);
    pad[511] = pad[0];
    return deep(acc * 31 + static_cast<std::uint64_t>(pad[511]), depth - 1);
  };
  for (int i = 0; i < 4; ++i) {
    ThreadId t = rt.spawn("deep" + std::to_string(i), kPriorityData,
                          [&](Runtime& r, Message) -> CodeResult {
                            auto v = deep(1, 100);  // ~70 KiB of frames
                            r.yield();              // interleave mid-depth
                            v += deep(2, 100);
                            ++completed;
                            (void)v;
                            return CodeResult::kTerminate;
                          },
                          256 * 1024);
    rt.send(t, Message{});
  }
  rt.run();
  EXPECT_EQ(completed, 4);
}

TEST(RtStress, ExceptionInOneThreadDoesNotCorruptOthers) {
  Runtime rt;
  int survivors = 0;
  for (int i = 0; i < 5; ++i) {
    ThreadId t = rt.spawn("t" + std::to_string(i), kPriorityData,
                          [&, i](Runtime&, Message) -> CodeResult {
                            if (i == 2) throw std::runtime_error("injected");
                            ++survivors;
                            return CodeResult::kTerminate;
                          });
    rt.send(t, Message{});
  }
  EXPECT_THROW(rt.run(), RuntimeError);
  rt.run();  // drain the rest
  EXPECT_EQ(survivors, 4);
}

TEST(RtStress, KillWhileSleepingAndWhileBlocked) {
  Runtime rt;
  const ThreadId sleeper = rt.spawn("sleeper", kPriorityData,
                                    [](Runtime& r, Message) -> CodeResult {
                                      r.sleep_for(seconds(100));
                                      return CodeResult::kTerminate;
                                    });
  const ThreadId blocked = rt.spawn("blocked", kPriorityData,
                                    [](Runtime& r, Message) -> CodeResult {
                                      (void)r.receive();
                                      return CodeResult::kTerminate;
                                    });
  rt.send(sleeper, Message{});
  rt.send(blocked, Message{});
  rt.run_until(milliseconds(1));
  EXPECT_TRUE(rt.alive(sleeper));
  EXPECT_TRUE(rt.alive(blocked));
  rt.kill(sleeper);
  rt.kill(blocked);
  EXPECT_FALSE(rt.alive(sleeper));
  EXPECT_FALSE(rt.alive(blocked));
  rt.run_until(seconds(200));  // the stale timer fires into a dead thread
  SUCCEED();
}

TEST(RtStress, CallToThreadThatDiesFailsCleanly) {
  Runtime rt;
  const ThreadId dier = rt.spawn("dier", kPriorityData,
                                 [](Runtime&, Message) -> CodeResult {
                                   return CodeResult::kTerminate;  // no reply
                                 });
  bool threw = false;
  const ThreadId caller = rt.spawn(
      "caller", kPriorityData, [&](Runtime& r, Message) -> CodeResult {
        // The callee terminates without replying; the caller would block
        // forever — kill() is the recovery path exercised here.
        try {
          (void)r.call(9999, Message{});  // dead id: throws immediately
        } catch (const RuntimeError&) {
          threw = true;
        }
        (void)dier;
        return CodeResult::kTerminate;
      });
  rt.send(caller, Message{});
  rt.run();
  EXPECT_TRUE(threw);
}

TEST(RtStress, FairnessAmongEqualPriorityThreads) {
  // Round-robin via FIFO ready order: with N always-ready threads, progress
  // counts stay within one step of each other.
  Runtime rt;
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<int> progress(kThreads, 0);
  std::vector<int> max_skew;
  for (int i = 0; i < kThreads; ++i) {
    ThreadId t = rt.spawn("w" + std::to_string(i), kPriorityData,
                          [&, i](Runtime& r, Message) -> CodeResult {
                            for (int k = 0; k < kRounds; ++k) {
                              ++progress[static_cast<std::size_t>(i)];
                              const auto [mn, mx] = std::minmax_element(
                                  progress.begin(), progress.end());
                              max_skew.push_back(*mx - *mn);
                              r.yield();
                            }
                            return CodeResult::kTerminate;
                          });
    rt.send(t, Message{});
  }
  rt.run();
  EXPECT_LE(*std::max_element(max_skew.begin(), max_skew.end()), 1)
      << "equal-priority threads diverged under yield round-robin";
}

TEST(RtStress, RunIsNotReentrant) {
  Runtime rt;
  const ThreadId t = rt.spawn("t", kPriorityData,
                              [&](Runtime& r, Message) -> CodeResult {
                                EXPECT_THROW(r.run(), RuntimeError);
                                return CodeResult::kTerminate;
                              });
  rt.send(t, Message{});
  rt.run();
}

TEST(RtStress, SendAtInPastFiresImmediately) {
  Runtime rt;
  std::vector<Time> at;
  const ThreadId t = rt.spawn("t", kPriorityData,
                              [&](Runtime& r, Message) -> CodeResult {
                                at.push_back(r.now());
                                return CodeResult::kContinue;
                              });
  rt.run_until(milliseconds(10));
  rt.send_at(milliseconds(5), t, Message{});  // already in the past
  rt.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], milliseconds(10));
}

TEST(RtStress, HugeMailboxDrainsInOrder) {
  Runtime rt;
  std::vector<int> got;
  const ThreadId t = rt.spawn("t", kPriorityData,
                              [&](Runtime&, Message m) -> CodeResult {
                                got.push_back(m.type);
                                return CodeResult::kContinue;
                              });
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) rt.send(t, Message{i, MsgClass::kData});
  rt.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

}  // namespace
}  // namespace infopipe::rt
