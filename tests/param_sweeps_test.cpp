// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole parameter grids, not just hand-picked cases.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/infopipes.hpp"
#include "net/reliable.hpp"

namespace infopipe {
namespace {

// ---------- reliable transport: lossless in-order for any loss rate ------------

using ArqParam = std::tuple<double /*loss*/, std::uint64_t /*seed*/>;

class ArqSweep : public ::testing::TestWithParam<ArqParam> {};

TEST_P(ArqSweep, AlwaysLosslessInOrder) {
  const auto [loss, seed] = GetParam();
  rt::Runtime rtm;
  net::LinkConfig fwd_cfg;
  fwd_cfg.bandwidth_bps = 10e6;
  fwd_cfg.base_latency = rt::milliseconds(8);
  fwd_cfg.random_loss = loss;
  fwd_cfg.seed = seed;
  net::SimLink fwd(fwd_cfg);
  net::LinkConfig ack_cfg;
  ack_cfg.bandwidth_bps = 10e6;
  ack_cfg.base_latency = rt::milliseconds(8);
  net::SimLink rev(ack_cfg);
  // RTO must exceed the worst-case RTT including the send burst's queueing
  // (~29 ms of serialization at 10 Mbps for 120x300 B), or healthy packets
  // retransmit spuriously — real ARQ behaviour, but not what this sweep
  // measures.
  net::ReliableTransport arq(rtm, fwd, rev, rt::milliseconds(100));

  std::vector<std::uint64_t> got;
  bool eos = false;
  const rt::ThreadId sink = rtm.spawn(
      "sink", rt::kPriorityData, [&](rt::Runtime&, rt::Message m) {
        if (m.type == net::kMsgNetDeliver) {
          Item x = m.take<Item>();
          if (x.is_eos()) {
            eos = true;
          } else {
            got.push_back(x.seq);
          }
        }
        return rt::CodeResult::kContinue;
      });
  arq.attach_receiver(sink);

  constexpr int kN = 120;
  for (int i = 0; i < kN; ++i) {
    Item x = Item::token();
    x.seq = static_cast<std::uint64_t>(i);
    x.size_bytes = 300;
    arq.send(rtm, std::move(x));
  }
  arq.send(rtm, Item::eos());
  rtm.run();

  std::vector<std::uint64_t> expect(kN);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(got, expect) << "loss=" << loss << " seed=" << seed;
  EXPECT_TRUE(eos);
  if (loss == 0.0) EXPECT_EQ(arq.stats().retransmissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, ArqSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.2, 0.4),
                       ::testing::Values(1u, 17u, 333u)),
    [](const ::testing::TestParamInfo<ArqParam>& info) {
      return "loss" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------- buffers: policy invariants across rate mismatches -------------------

struct BufParam {
  std::size_t capacity;
  FullPolicy full;
  double fill_hz;
  double drain_hz;
};

class BufferSweep : public ::testing::TestWithParam<BufParam> {};

TEST_P(BufferSweep, PolicyInvariantsHold) {
  const BufParam p = GetParam();
  rt::Runtime rtm;
  constexpr std::uint64_t kItems = 300;
  CountingSource src("src", kItems);
  ClockedPump fill("fill", p.fill_hz);
  Buffer buf("buf", p.capacity, p.full, EmptyPolicy::kBlock);
  ClockedPump drain("drain", p.drain_hz);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();

  const auto& s = buf.stats();
  // Conservation. The two drop policies account differently: kDropNewest
  // rejects items before they are accepted (puts excludes them), while
  // kDropOldest evicts items that were already accepted (puts includes
  // them).
  if (p.full == FullPolicy::kDropNewest) {
    EXPECT_EQ(s.puts + s.drops, kItems);
    EXPECT_EQ(s.takes + buf.fill(), s.puts);
  } else {  // kBlock (drops == 0) and kDropOldest
    EXPECT_EQ(s.puts, kItems);
    EXPECT_EQ(s.takes + buf.fill() + s.drops, s.puts);
  }
  // Fill never exceeded capacity (modulo the one-slot stop-overflow, which
  // cannot occur here: nothing stops mid-run).
  EXPECT_LE(s.max_fill, p.capacity);
  // Order is preserved for the delivered subsequence.
  const auto seqs = sink.seqs();
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
  // Blocking policy never drops.
  if (p.full == FullPolicy::kBlock) {
    EXPECT_EQ(s.drops, 0u);
    EXPECT_EQ(sink.count(), kItems);
  }
  // A strictly faster consumer loses nothing under any policy.
  if (p.drain_hz > p.fill_hz) {
    EXPECT_EQ(sink.count(), kItems);
  }
  EXPECT_TRUE(sink.eos_seen());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyRateGrid, BufferSweep,
    ::testing::Values(
        BufParam{2, FullPolicy::kBlock, 500.0, 100.0},
        BufParam{2, FullPolicy::kBlock, 100.0, 500.0},
        BufParam{8, FullPolicy::kBlock, 500.0, 500.0},
        BufParam{2, FullPolicy::kDropNewest, 500.0, 100.0},
        BufParam{8, FullPolicy::kDropNewest, 100.0, 500.0},
        BufParam{2, FullPolicy::kDropOldest, 500.0, 100.0},
        BufParam{8, FullPolicy::kDropOldest, 500.0, 100.0},
        BufParam{1, FullPolicy::kBlock, 1000.0, 50.0},
        BufParam{1, FullPolicy::kDropOldest, 1000.0, 50.0}),
    [](const ::testing::TestParamInfo<BufParam>& info) {
      const BufParam& p = info.param;
      const char* pol = p.full == FullPolicy::kBlock        ? "block"
                        : p.full == FullPolicy::kDropNewest ? "dropnew"
                                                            : "dropold";
      return std::string(pol) + "_cap" + std::to_string(p.capacity) + "_" +
             std::to_string(static_cast<int>(p.fill_hz)) + "to" +
             std::to_string(static_cast<int>(p.drain_hz));
    });

// ---------- clocked pumps: exact pacing at any rate --------------------------------

class PumpRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(PumpRateSweep, ExactCadenceUnderVirtualClock) {
  const double hz = GetParam();
  rt::Runtime rtm;
  CountingSource src("src", 50);
  ClockedPump pump("pump", hz);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 50u);
  const rt::Time period = static_cast<rt::Time>(1e9 / hz + 0.5);
  for (std::size_t i = 1; i < sink.arrivals().size(); ++i) {
    const rt::Time dt = sink.arrivals()[i].at - sink.arrivals()[i - 1].at;
    EXPECT_NEAR(static_cast<double>(dt), static_cast<double>(period), 2.0)
        << "at " << hz << " Hz, cycle " << i;
  }
  EXPECT_EQ(pump.deadline_misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, PumpRateSweep,
                         ::testing::Values(1.0, 24.0, 29.97, 30.0, 48.0,
                                           100.0, 44100.0 / 512, 1000.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "hz" + std::to_string(static_cast<int>(
                                             info.param * 100));
                         });

}  // namespace
}  // namespace infopipe
