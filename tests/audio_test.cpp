// Audio substrate tests: tone generation, pull-driven mixing, and the
// clock-driven active sink with underrun accounting (§3.1's audio device).
#include <gtest/gtest.h>

#include <cmath>

#include "core/infopipes.hpp"
#include "media/audio.hpp"

namespace infopipe::media {
namespace {

TEST(Audio, ToneSourceProducesExpectedChunks) {
  rt::Runtime rtm;
  ToneSource tone("tone", 1000.0, 5, 80, 8000);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = tone >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 5u);
  const AudioChunk& c = sink.arrivals()[2].item.as<AudioChunk>();
  EXPECT_EQ(c.chunk_no, 2u);
  EXPECT_EQ(c.samples.size(), 80u);
  // 80 samples at 8 kHz = 10 ms per chunk.
  EXPECT_EQ(c.pts, rt::milliseconds(20));
  // Values stay within a sine's range and are not all zero.
  float peak = 0.0f;
  for (float s : c.samples) {
    EXPECT_LE(std::abs(s), 1.0f);
    peak = std::max(peak, std::abs(s));
  }
  EXPECT_GT(peak, 0.5f);
}

TEST(Audio, MixerCombinesOneChunkPerInput) {
  rt::Runtime rtm;
  ToneSource a("a", 440.0, 10);
  ToneSource b("b", 880.0, 10);
  AudioMixer mix("mix", 2);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(a, 0, mix, 0);
  p.connect(b, 0, mix, 1);
  p.connect(mix, 0, pump, 0);
  p.connect(pump, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 10u);
  // Mixed output is scaled by 1/N, so it stays within range.
  const AudioChunk& c = sink.arrivals()[0].item.as<AudioChunk>();
  for (float s : c.samples) EXPECT_LE(std::abs(s), 1.0f);
}

TEST(Audio, DeviceDrivesAtItsOwnRate) {
  rt::Runtime rtm;
  ToneSource tone("tone", 440.0, 1000);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 8, FullPolicy::kBlock, EmptyPolicy::kNil);
  AudioDevice device("device", 100.0);
  auto ch = tone >> fill >> buf >> device;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(5));
  // 100 chunks/s for 5 s (+1 for the cycle at t=0).
  EXPECT_NEAR(static_cast<double>(device.stats().played), 500.0, 2.0);
  // The device's very first tick may race the fill pump's first item (a
  // real device starting before the buffer is primed); after that, no
  // steady-state underruns.
  EXPECT_LE(device.stats().underruns, 1u);
  // Media position equals played chunks x 10 ms.
  EXPECT_NEAR(static_cast<double>(device.position()) / 1e6,
              static_cast<double>(device.stats().played) * 10.0, 0.1);
}

TEST(Audio, DeviceCountsUnderrunsWhenStarved) {
  rt::Runtime rtm;
  ToneSource tone("tone", 440.0, 1u << 20);
  ClockedPump fill("fill", 50.0);  // produces at half the device rate
  Buffer buf("buf", 4, FullPolicy::kBlock, EmptyPolicy::kNil);
  AudioDevice device("device", 100.0);
  auto ch = tone >> fill >> buf >> device;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(5));
  EXPECT_GT(device.stats().underruns, 100u)
      << "a device starved half the time must record underruns";
  EXPECT_NEAR(static_cast<double>(device.stats().played), 250.0, 10.0);
  real.shutdown();
  rtm.run();
}

TEST(Audio, PositionEventsBroadcast) {
  rt::Runtime rtm;
  ToneSource tone("tone", 440.0, 100);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 8, FullPolicy::kBlock, EmptyPolicy::kBlock);
  AudioDevice device("device", 100.0, /*position_report_every=*/25);
  auto ch = tone >> fill >> buf >> device;
  Realization real(rtm, ch.pipeline());
  int reports = 0;
  rt::Time last_pos = 0;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventAudioPosition) {
      ++reports;
      last_pos = *e.get<rt::Time>();
    }
  });
  real.start();
  rtm.run_until(rt::seconds(2));
  EXPECT_EQ(reports, 4);  // 100 chunks / 25
  EXPECT_EQ(last_pos, rt::seconds(1));  // 100 chunks x 10 ms media time
}

TEST(Audio, DeviceIsASectionDriver) {
  // The audio device drives its section (§3.1): source and buffer need no
  // pump of their own on the device side.
  ToneSource tone("tone", 440.0, 10);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 4);
  AudioDevice device("device", 100.0);
  auto ch = tone >> fill >> buf >> device;
  Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 2u);
  bool device_is_driver = false;
  for (const auto& s : p.sections) {
    if (s.driver == &device) device_is_driver = true;
  }
  EXPECT_TRUE(device_is_driver);
}

}  // namespace
}  // namespace infopipe::media
