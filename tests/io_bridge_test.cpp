// IoBridge tests (§4: OS events mapped onto platform messages). These run
// against the REAL clock and real OS primitives (pipes, signals), with
// generous deadlines for CI noise.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rt/io_bridge.hpp"
#include "rt/runtime.hpp"

namespace infopipe::rt {
namespace {

TEST(IoBridge, FdDataArrivesAsMessages) {
  Runtime rt(std::make_unique<RealClock>());
  std::vector<std::string> got;
  bool eof = false;
  const ThreadId sink = rt.spawn(
      "net-reader", kPriorityData, [&](Runtime&, Message m) -> CodeResult {
        if (m.type == kMsgIoData) {
          const auto& bytes = *m.get<std::vector<std::uint8_t>>();
          got.emplace_back(bytes.begin(), bytes.end());
        } else if (m.type == kMsgIoEof) {
          eof = true;
        }
        return CodeResult::kContinue;
      });

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  IoBridge bridge(rt);
  bridge.watch_fd(fds[0], sink);

  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(::write(fds[1], "hello", 5), 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(::write(fds[1], "world", 5), 5);
    ::close(fds[1]);
  });

  // Drive the runtime until everything arrived (bounded by a deadline).
  const Time deadline = rt.now() + seconds(5);
  while ((got.size() < 2 || !eof) && rt.now() < deadline) {
    rt.run_until(rt.now() + milliseconds(50));
  }
  writer.join();
  ::close(fds[0]);

  ASSERT_GE(got.size(), 2u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], "world");
  EXPECT_TRUE(eof);
}

TEST(IoBridge, SignalsArriveAsControlMessages) {
  Runtime rt(std::make_unique<RealClock>());
  int signals_seen = 0;
  int last_signo = 0;
  const ThreadId handler = rt.spawn(
      "signal-handler", kPriorityControl,
      [&](Runtime&, Message m) -> CodeResult {
        if (m.type == kMsgIoSignal) {
          ++signals_seen;
          last_signo = *m.get<int>();
        }
        return CodeResult::kContinue;
      });

  IoBridge bridge(rt);
  bridge.watch_signal(SIGUSR1, handler);

  std::thread kicker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::kill(::getpid(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::kill(::getpid(), SIGUSR1);
  });

  const Time deadline = rt.now() + seconds(5);
  while (signals_seen < 2 && rt.now() < deadline) {
    rt.run_until(rt.now() + milliseconds(50));
  }
  kicker.join();

  EXPECT_EQ(signals_seen, 2);
  EXPECT_EQ(last_signo, SIGUSR1);
}

TEST(IoBridge, PostExternalWakesARealClockWait) {
  Runtime rt(std::make_unique<RealClock>());
  Time handled_at = -1;
  const ThreadId sink = rt.spawn("sink", kPriorityData,
                                 [&](Runtime& r, Message) -> CodeResult {
                                   handled_at = r.now();
                                   return CodeResult::kTerminate;
                                 });
  std::thread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    rt.post_external(sink, Message{1, MsgClass::kData});
  });
  // A 2 s horizon: without the interruptible wait the message would not be
  // handled until the horizon; with it, it is handled within ~30 ms. Stop
  // the loop as soon as the thread terminates to keep the test fast.
  const Time t0 = rt.now();
  while (handled_at < 0 && rt.now() < t0 + seconds(2)) {
    rt.run_until(rt.now() + milliseconds(500));
    if (handled_at >= 0) break;
  }
  poker.join();
  ASSERT_GE(handled_at, 0);
  EXPECT_LT(handled_at - t0, milliseconds(400)) << "wait was not interrupted";
}

TEST(IoBridge, UnwatchStopsDelivery) {
  Runtime rt(std::make_unique<RealClock>());
  int chunks = 0;
  const ThreadId sink = rt.spawn("sink", kPriorityData,
                                 [&](Runtime&, Message m) -> CodeResult {
                                   if (m.type == kMsgIoData) ++chunks;
                                   return CodeResult::kContinue;
                                 });
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  IoBridge bridge(rt);
  bridge.watch_fd(fds[0], sink);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  const Time deadline = rt.now() + seconds(5);
  while (chunks < 1 && rt.now() < deadline) {
    rt.run_until(rt.now() + milliseconds(50));
  }
  EXPECT_EQ(chunks, 1);

  bridge.unwatch_fd(fds[0]);
  ASSERT_EQ(::write(fds[1], "y", 1), 1);
  rt.run_until(rt.now() + milliseconds(300));
  EXPECT_EQ(chunks, 1) << "delivery after unwatch";
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- multi-runtime lifecycle (the ip_shard prerequisites) -------------------

TEST(IoBridge, TwoBridgesOnTwoRuntimesCoexist) {
  Runtime rt_a(std::make_unique<RealClock>());
  Runtime rt_b(std::make_unique<RealClock>());
  int got_a = 0;
  int got_b = 0;
  const ThreadId sink_a = rt_a.spawn("a", kPriorityData,
                                     [&](Runtime&, Message m) -> CodeResult {
                                       if (m.type == kMsgIoData) ++got_a;
                                       return CodeResult::kContinue;
                                     });
  const ThreadId sink_b = rt_b.spawn("b", kPriorityData,
                                     [&](Runtime&, Message m) -> CodeResult {
                                       if (m.type == kMsgIoData) ++got_b;
                                       return CodeResult::kContinue;
                                     });
  int fds_a[2];
  int fds_b[2];
  ASSERT_EQ(::pipe(fds_a), 0);
  ASSERT_EQ(::pipe(fds_b), 0);
  IoBridge bridge_a(rt_a);
  IoBridge bridge_b(rt_b);
  bridge_a.watch_fd(fds_a[0], sink_a);
  bridge_b.watch_fd(fds_b[0], sink_b);
  ASSERT_EQ(::write(fds_a[1], "x", 1), 1);
  ASSERT_EQ(::write(fds_b[1], "y", 1), 1);
  const Time deadline = rt_a.now() + seconds(5);
  while ((got_a < 1 || got_b < 1) && rt_a.now() < deadline) {
    rt_a.run_until(rt_a.now() + milliseconds(20));
    rt_b.run_until(rt_b.now() + milliseconds(20));
  }
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  ::close(fds_a[0]);
  ::close(fds_a[1]);
  ::close(fds_b[0]);
  ::close(fds_b[1]);
}

TEST(IoBridge, SecondSignalClaimantIsRejectedAndOwnershipReleases) {
  Runtime rt_a(std::make_unique<RealClock>());
  const ThreadId sink_a = rt_a.spawn(
      "a", kPriorityControl,
      [](Runtime&, Message) -> CodeResult { return CodeResult::kContinue; });
  {
    IoBridge first(rt_a);
    first.watch_signal(SIGUSR2, sink_a);
    IoBridge second(rt_a);
    EXPECT_THROW(second.watch_signal(SIGUSR2, sink_a), RuntimeError);
  }
  // Both bridges destroyed: the self-pipe ownership must have been released
  // so a fresh bridge can claim signals again.
  Runtime rt_b(std::make_unique<RealClock>());
  const ThreadId sink_b = rt_b.spawn(
      "b", kPriorityControl,
      [](Runtime&, Message) -> CodeResult { return CodeResult::kContinue; });
  IoBridge third(rt_b);
  EXPECT_NO_THROW(third.watch_signal(SIGUSR2, sink_b));
}

TEST(IoBridge, TeardownUnderConcurrentPostsIsDeterministic) {
  // Hammer the poller lifecycle: while external kernel threads are posting
  // into the runtime and writing into a watched pipe, destroy the bridge.
  // The destructor must join the poller deterministically — no use-after-
  // free of the bridge's state, no lost runtime, no hang (the test TIMEOUT
  // catches that). Run several rounds to hit different interleavings.
  for (int round = 0; round < 20; ++round) {
    Runtime rt(std::make_unique<RealClock>());
    std::atomic<int> seen{0};
    const ThreadId sink = rt.spawn("sink", kPriorityData,
                                   [&](Runtime&, Message m) -> CodeResult {
                                     if (m.type == kMsgIoData) {
                                       seen.fetch_add(1);
                                     }
                                     return CodeResult::kContinue;
                                   });
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Nonblocking write end: the writer must never park in a full pipe once
    // the bridge stops draining it.
    ASSERT_EQ(::fcntl(fds[1], F_SETFL, O_NONBLOCK), 0);
    std::atomic<bool> stop{false};
    auto bridge = std::make_unique<IoBridge>(rt);
    bridge->watch_fd(fds[0], sink);
    std::thread writer([&] {
      while (!stop.load()) {
        (void)::write(fds[1], "z", 1);
        std::this_thread::yield();
      }
    });
    std::thread poster([&] {
      // Bounded: an unthrottled spin would queue millions of messages the
      // final drain must then dispatch (minutes under TSan).
      for (int n = 0; n < 2000 && !stop.load(); ++n) {
        rt.post_external(sink, Message{kMsgIoEof, MsgClass::kData});
        std::this_thread::yield();
      }
    });
    rt.run_until(rt.now() + milliseconds(5));
    // Bridge destructor races the writer and the poster.
    bridge.reset();
    stop.store(true);
    writer.join();
    poster.join();
    // The runtime survives the bridge: posts still work afterwards.
    rt.post_external(sink, Message{kMsgIoEof, MsgClass::kData});
    rt.run_until(rt.now() + milliseconds(5));
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

}  // namespace
}  // namespace infopipe::rt
