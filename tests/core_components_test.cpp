// Tests for the auxiliary toolkit components (rate limiter, sampler,
// sequence validator, simulated work) and failure injection through the
// middleware: exceptions from component code must surface cleanly, and a
// broken pipeline must tear down without corrupting the runtime.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

// ---------- toolkit components --------------------------------------------------

TEST(RateLimiter, PolicesToTheConfiguredRate) {
  rt::Runtime rtm;
  CountingSource src("src", 1000);
  ClockedPump pump("pump", 200.0);  // 200 items/s offered
  RateLimiter limiter("limiter", 50.0);  // 50 items/s allowed
  CountingSink sink("sink");
  auto ch = src >> pump >> limiter >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();  // 1000 items over 5 s
  // ~50/s for 5 s = ~250 pass.
  EXPECT_NEAR(static_cast<double>(sink.count()), 250.0, 10.0);
  EXPECT_EQ(limiter.passed() + limiter.dropped(), 1000u);
}

TEST(RateLimiter, PassesEverythingUnderTheLimit) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  ClockedPump pump("pump", 20.0);
  RateLimiter limiter("limiter", 50.0);
  CountingSink sink("sink");
  auto ch = src >> pump >> limiter >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 100u);
  EXPECT_EQ(limiter.dropped(), 0u);
}

TEST(Sampler, KeepsEveryKth) {
  rt::Runtime rtm;
  CountingSource src("src", 20);
  FreeRunningPump pump("pump");
  Sampler sampler("sampler", 4);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sampler >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.seqs(), (std::vector<std::uint64_t>{0, 4, 8, 12, 16}));
}

TEST(SequenceValidator, CountsGapsAndReorderings) {
  rt::Runtime rtm;
  std::vector<Item> items;
  for (std::uint64_t s : {0, 1, 2, 5, 6, 4, 7}) {  // gap (3,4 missing), then 4 reordered
    Item x = Item::token();
    x.seq = s;
    items.push_back(x);
  }
  VectorSource src("src", std::move(items));
  FreeRunningPump pump("pump");
  SequenceValidator v("v");
  CountingSink sink("sink");
  auto ch = src >> pump >> v >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(v.observed(), 7u);
  // 2->5 skips {3,4}; after the 6->4 reordering the 4->7 step skips {5,6}
  // again (the validator tracks the last seq seen, so a reordering makes
  // the following forward jump count as a gap — by design, it flags BOTH
  // anomalies).
  EXPECT_EQ(v.gaps(), 4u);
  EXPECT_EQ(v.reorderings(), 1u);  // 6 -> 4
}

TEST(SimulatedWork, ConsumesPipelineTime) {
  rt::Runtime rtm;
  CountingSource src("src", 10);
  FreeRunningPump pump("pump");
  SimulatedWork work("work", rt::milliseconds(5));
  CollectorSink sink("sink");
  auto ch = src >> pump >> work >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 10u);
  EXPECT_EQ(rtm.now(), rt::milliseconds(50)) << "10 items x 5 ms of work";
}

// ---------- failure injection -----------------------------------------------------

class ThrowingConsumer : public Consumer {
 public:
  ThrowingConsumer(std::string name, std::uint64_t after)
      : Consumer(std::move(name)), after_(after) {}

 protected:
  void push(Item x) override {
    if (x.seq >= after_) throw std::runtime_error("injected component fault");
    push_next(std::move(x));
  }

 private:
  std::uint64_t after_;
};

TEST(FailureInjection, ComponentExceptionSurfacesFromRun) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  FreeRunningPump pump("pump");
  ThrowingConsumer bad("bad", 5);
  CollectorSink sink("sink");
  auto ch = src >> pump >> bad >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  try {
    rtm.run();
    FAIL() << "expected the injected fault to surface";
  } catch (const rt::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("injected component fault"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pump"), std::string::npos)
        << "error should name the hosting thread";
  }
  EXPECT_EQ(sink.count(), 5u);  // items before the fault were delivered
}

TEST(FailureInjection, ExceptionInsideCoroutineSurfacesToo) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  FreeRunningPump pump("pump");
  LambdaActive bad("bad", [](const auto& pull, const auto& push) {
    for (;;) {
      Item x = pull();
      if (x.seq >= 3) throw std::runtime_error("coroutine fault");
      push(std::move(x));
    }
  });
  CollectorSink sink("sink");
  auto ch = src >> pump >> bad >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  EXPECT_THROW(rtm.run(), rt::RuntimeError);
  EXPECT_EQ(sink.count(), 3u);
}

TEST(FailureInjection, HandlerExceptionSurfaces) {
  class BadHandler : public IdentityFunction {
   public:
    using IdentityFunction::IdentityFunction;
    void handle_event(const Event& e) override {
      if (e.type == kEventUser + 1) throw std::logic_error("handler fault");
    }
  };
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  ClockedPump pump("pump", 100.0);
  BadHandler bad("bad");
  CollectorSink sink("sink");
  auto ch = src >> pump >> bad >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(50));
  real.post_event_to(bad, Event{kEventUser + 1});
  EXPECT_THROW(rtm.run_until(rt::milliseconds(100)), rt::RuntimeError);
}

TEST(FailureInjection, DestructorWithLiveThreadsIsSafe) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  DefragmenterActive defrag("defrag", [](Item a, Item) { return a; });
  FreeRunningPump pump("pump");
  Buffer buf("buf", 2);
  ClockedPump drain("drain", 10.0);
  CollectorSink sink("sink");
  auto ch = src >> defrag >> pump >> buf >> drain >> sink;
  {
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run_until(rt::milliseconds(250));
    // No shutdown: the destructor must kill the threads without UB.
  }
  EXPECT_EQ(rtm.live_threads(), 0u);
  // The runtime remains usable afterwards.
  rt::ThreadId t = rtm.spawn("after", rt::kPriorityData,
                             [](rt::Runtime&, rt::Message) {
                               return rt::CodeResult::kTerminate;
                             });
  rtm.send(t, rt::Message{});
  rtm.run();
  EXPECT_EQ(rtm.live_threads(), 0u);
}

TEST(FailureInjection, BrokenPlanLeavesNoThreads) {
  rt::Runtime rtm;
  CountingSource src("src", 10);
  IdentityFunction fn("fn");
  CollectorSink sink("sink");
  auto ch = src >> fn >> sink;  // no pump anywhere
  const std::size_t before = rtm.live_threads();
  EXPECT_THROW(Realization real(rtm, ch.pipeline()), CompositionError);
  EXPECT_EQ(rtm.live_threads(), before);
  // Components stay reusable after the failed realization.
  FreeRunningPump pump("pump");
  Pipeline p2;
  p2.connect(src, 0, fn, 0);
  p2.connect(fn, 0, pump, 0);
  p2.connect(pump, 0, sink, 0);
  Realization real2(rtm, p2);
  real2.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 10u);
}

}  // namespace
}  // namespace infopipe
