// Partition tests: sections-to-shards assignment (ip_shard).
//
// The invariants under test, for the Figure 9 configurations a-h and for
// multi-section chains, at 1, 2 and 4 shards:
//   * cuts land ONLY on passive buffer boundaries — never inside a section,
//   * threads_per_shard() sums to plan.total_threads() (conservation),
//   * sections joined through a shared region (MergeTee tails) are never
//     separated, nor are explicitly colocated pairs,
//   * the assignment is deterministic (LPT greedy over sorted clusters).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/infopipes.hpp"
#include "core/tee.hpp"

namespace infopipe {
namespace {

Item combine2(Item a, Item) { return a; }

struct Fixture {
  CountingSource src{"src", 100};
  CollectorSink sink{"sink"};
  FreeRunningPump pump{"pump"};
  DefragmenterConsumer consumer{"consumer", combine2};
  DefragmenterConsumer consumer2{"consumer2", combine2};
  DefragmenterProducer producer{"producer", combine2};
  DefragmenterProducer producer2{"producer2", combine2};
  DefragmenterActive active{"active", combine2};
  DefragmenterActive active2{"active2", combine2};
  IdentityFunction fn{"fn"};
  IdentityFunction fn2{"fn2"};
};

/// Checks the partition invariants that must hold for EVERY plan.
void check_invariants(const Plan& p, const Partition& part, int n_shards) {
  ASSERT_EQ(part.n_shards, n_shards);
  ASSERT_EQ(part.shard_of_section.size(), p.sections.size());
  for (const int s : part.shard_of_section) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, n_shards);
  }
  // Thread conservation.
  const std::vector<int> per_shard = part.threads_per_shard(p);
  ASSERT_EQ(per_shard.size(), static_cast<std::size_t>(n_shards));
  EXPECT_EQ(std::accumulate(per_shard.begin(), per_shard.end(), 0),
            p.total_threads());
  // Cuts only at buffer boundaries, and only where shards actually differ.
  for (const Partition::Cut& c : part.cuts) {
    ASSERT_NE(c.buffer, nullptr);
    EXPECT_EQ(c.buffer->style(), Style::kBuffer)
        << "cut at non-buffer '" << c.buffer->name() << "'";
    EXPECT_EQ(p.hosted_info(*c.buffer), nullptr)
        << "cut buffer '" << c.buffer->name() << "' is inside a section";
    ASSERT_LT(c.upstream_section, p.sections.size());
    ASSERT_LT(c.downstream_section, p.sections.size());
    EXPECT_NE(part.shard_of_section[c.upstream_section],
              part.shard_of_section[c.downstream_section]);
  }
  // Every section member stays with its driver (sections are atomic).
  for (std::size_t i = 0; i < p.sections.size(); ++i) {
    const Plan::Section& sec = p.sections[i];
    EXPECT_EQ(part.shard_of(p, *sec.driver), part.shard_of_section[i]);
    for (const Plan::Hosted& h : sec.members) {
      if (h.shared) continue;  // shared comps are listed under one section
      EXPECT_EQ(part.shard_of(p, *h.comp), part.shard_of_section[i]);
    }
  }
}

// --- Figure 9 a-h: single-section pipelines never get cut -------------------

TEST(ShardPartition, Figure9SingleSectionsNeverCut) {
  for (const int n : {1, 2, 4}) {
    for (int cfg = 0; cfg < 8; ++cfg) {
      Fixture f;
      Pipeline* pipe = nullptr;
      Chain ch = [&]() -> Chain {
        switch (cfg) {
          case 0:  // a
            return f.src >> f.producer >> f.pump >> f.consumer >> f.sink;
          case 1:  // b
            return f.src >> f.fn >> f.pump >> f.fn2 >> f.sink;
          case 2:  // c
            return f.src >> f.pump >> f.consumer >> f.consumer2 >> f.sink;
          case 3:  // d
            return f.src >> f.pump >> f.active >> f.fn >> f.sink;
          case 4:  // e
            return f.src >> f.consumer >> f.pump >> f.producer >> f.sink;
          case 5:  // f
            return f.src >> f.active >> f.pump >> f.active2 >> f.sink;
          case 6:  // g
            return f.src >> f.producer2 >> f.producer >> f.pump >> f.sink;
          case 7:  // h
          default:
            return f.src >> f.pump >> f.consumer >> f.fn >> f.sink;
        }
      }();
      pipe = &ch.pipeline();
      const Plan p = plan(*pipe);
      ASSERT_EQ(p.sections.size(), 1u) << "cfg " << cfg;
      const Partition part = partition(p, n);
      check_invariants(p, part, n);
      EXPECT_TRUE(part.cuts.empty()) << "cfg " << cfg << " at " << n;
      // All threads on one shard.
      const std::vector<int> per = part.threads_per_shard(p);
      int nonzero = 0;
      for (const int t : per) nonzero += t > 0 ? 1 : 0;
      EXPECT_EQ(nonzero, 1) << "cfg " << cfg << " at " << n;
    }
  }
}

// --- Multi-section chains: cuts appear exactly at the buffers ---------------

TEST(ShardPartition, TwoSectionsSplitAtTheBuffer) {
  Fixture f;
  Buffer buf{"buf", 8};
  FreeRunningPump pump2{"pump2"};
  auto ch = f.src >> f.pump >> buf >> pump2 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 2u);

  const Partition p1 = partition(p, 1);
  check_invariants(p, p1, 1);
  EXPECT_TRUE(p1.cuts.empty());

  const Partition p2 = partition(p, 2);
  check_invariants(p, p2, 2);
  ASSERT_EQ(p2.cuts.size(), 1u);
  EXPECT_EQ(p2.cuts[0].buffer, &buf);
  EXPECT_EQ(p2.threads_per_shard(p), (std::vector<int>{1, 1}));
}

TEST(ShardPartition, FourSectionChainAcrossFourShards) {
  Fixture f;
  Buffer b1{"b1", 8};
  Buffer b2{"b2", 8};
  Buffer b3{"b3", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  FreeRunningPump pump4{"pump4"};
  auto ch = f.src >> f.pump >> b1 >> f.fn >> pump2 >> b2 >> pump3 >> b3 >>
            f.fn2 >> pump4 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 4u);

  for (const int n : {1, 2, 4}) {
    const Partition part = partition(p, n);
    check_invariants(p, part, n);
    if (n == 1) {
      EXPECT_TRUE(part.cuts.empty());
    } else if (n == 4) {
      // Four 1-thread sections over four shards: every buffer is a cut.
      EXPECT_EQ(part.cuts.size(), 3u);
      for (const int t : part.threads_per_shard(p)) EXPECT_EQ(t, 1);
    } else {
      EXPECT_EQ(part.threads_per_shard(p), (std::vector<int>{2, 2}));
    }
  }
}

TEST(ShardPartition, HeavySectionsBalanceByThreadCount) {
  // Section 1 has three threads (two active members), sections 2 and 3 have
  // one each; LPT must put the heavy one alone on a shard.
  Fixture f;
  Buffer b1{"b1", 8};
  Buffer b2{"b2", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  auto ch = f.src >> f.active >> f.pump >> f.active2 >> b1 >> pump2 >> b2 >>
            pump3 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 3u);
  ASSERT_EQ(p.total_threads(), 5);

  const Partition part = partition(p, 2);
  check_invariants(p, part, 2);
  std::vector<int> per = part.threads_per_shard(p);
  std::sort(per.begin(), per.end());
  EXPECT_EQ(per, (std::vector<int>{2, 3}));
}

// --- Shared regions and explicit colocation are never separated -------------

TEST(ShardPartition, MergeTailSectionsStayTogether) {
  Fixture f;
  CountingSource src2{"src2", 100};
  FreeRunningPump pump2{"pump2"};
  MergeTee merge{"merge", 2};
  Pipeline pipe;
  pipe.connect(f.src, 0, f.pump, 0);
  pipe.connect(f.pump, 0, merge, 0);
  pipe.connect(src2, 0, pump2, 0);
  pipe.connect(pump2, 0, merge, 1);
  pipe.connect(merge, 0, f.sink, 0);
  const Plan p = plan(pipe);
  ASSERT_EQ(p.sections.size(), 2u);

  for (const int n : {2, 4}) {
    const Partition part = partition(p, n);
    check_invariants(p, part, n);
    // The merge tail is reachable from both drivers; separating the two
    // sections would put a non-buffer edge across shards.
    EXPECT_EQ(part.shard_of_section[0], part.shard_of_section[1]);
    EXPECT_TRUE(part.cuts.empty());
  }
}

TEST(ShardPartition, ColocatePairOverridesBalance) {
  Fixture f;
  Buffer buf{"buf", 8};
  FreeRunningPump pump2{"pump2"};
  auto ch = f.src >> f.pump >> buf >> pump2 >> f.sink;
  const Plan p = plan(ch.pipeline());

  // Without the constraint the two sections separate at 2 shards...
  EXPECT_EQ(partition(p, 2).cuts.size(), 1u);
  // ...with it they land on one shard and nothing is cut.
  const Partition part = partition(p, 2, {{&f.pump, &pump2}});
  check_invariants(p, part, 2);
  EXPECT_TRUE(part.cuts.empty());
  EXPECT_EQ(part.shard_of_section[0], part.shard_of_section[1]);
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  Fixture f;
  Buffer b1{"b1", 8};
  Buffer b2{"b2", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  auto ch =
      f.src >> f.pump >> b1 >> pump2 >> b2 >> pump3 >> f.sink;
  const Plan p = plan(ch.pipeline());
  const Partition a = partition(p, 2);
  const Partition b = partition(p, 2);
  EXPECT_EQ(a.shard_of_section, b.shard_of_section);
  ASSERT_EQ(a.cuts.size(), b.cuts.size());
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].buffer, b.cuts[i].buffer);
  }
}

// --- per-section migratability ----------------------------------------------

/// Function stage standing in for a device-bound component.
class NonMigratableStage : public FunctionComponent {
 public:
  using FunctionComponent::FunctionComponent;
  [[nodiscard]] bool migratable() const override { return false; }

 protected:
  Item convert(Item x) override { return x; }
};

TEST(ShardPartition, FreeSectionsAreMigratable) {
  Fixture f;
  Buffer b1{"b1", 8};
  Buffer b2{"b2", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  auto ch = f.src >> f.pump >> b1 >> pump2 >> b2 >> pump3 >> f.sink;
  const Plan p = plan(ch.pipeline());
  const Partition part = partition(p, 2);
  ASSERT_EQ(part.migratable_section.size(), p.sections.size());
  for (std::size_t i = 0; i < p.sections.size(); ++i) {
    EXPECT_TRUE(part.migratable(i)) << "section " << i;
  }
  EXPECT_FALSE(part.migratable(99));  // out of range is just "no"
}

TEST(ShardPartition, ColocationClustersArePinned) {
  Fixture f;
  Buffer drop{"drop", 8, FullPolicy::kDropOldest};  // forces colocation
  Buffer b2{"b2", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  auto ch = f.src >> f.pump >> drop >> pump2 >> b2 >> pump3 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 3u);
  const Partition part =
      partition(p, 2, {{p.sections[0].driver, p.sections[1].driver}});
  // Sections 0 and 1 move only as a unit (the kDropOldest buffer between
  // them cannot become a channel); section 2 is free.
  EXPECT_FALSE(part.migratable(0));
  EXPECT_FALSE(part.migratable(1));
  EXPECT_TRUE(part.migratable(2));
}

TEST(ShardPartition, NonMigratableMemberPinsItsSection) {
  Fixture f;
  NonMigratableStage dev{"dev"};
  Buffer b1{"b1", 8};
  FreeRunningPump pump2{"pump2"};
  auto ch = f.src >> dev >> f.pump >> b1 >> pump2 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 2u);
  const Partition part = partition(p, 2);
  EXPECT_FALSE(part.migratable(0));  // hosts the device stand-in
  EXPECT_TRUE(part.migratable(1));
}

TEST(ShardPartition, CutsForRecomputesAfterReassignment) {
  Fixture f;
  Buffer b1{"b1", 8};
  Buffer b2{"b2", 8};
  FreeRunningPump pump2{"pump2"};
  FreeRunningPump pump3{"pump3"};
  auto ch = f.src >> f.pump >> b1 >> pump2 >> b2 >> pump3 >> f.sink;
  const Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 3u);

  // All together: no cuts. Middle section alone: both buffers cut.
  EXPECT_TRUE(cuts_for(p, {0, 0, 0}).empty());
  const std::vector<Partition::Cut> both = cuts_for(p, {0, 1, 0});
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].buffer, &b1);
  EXPECT_EQ(both[1].buffer, &b2);
  // A chain split: one cut, at the moved boundary only.
  const std::vector<Partition::Cut> tail = cuts_for(p, {0, 0, 1});
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].buffer, &b2);
  EXPECT_EQ(tail[0].upstream_section, 1u);
  EXPECT_EQ(tail[0].downstream_section, 2u);
}

TEST(ShardPartition, MoreShardsThanSectionsLeavesShardsEmpty) {
  Fixture f;
  auto ch = f.src >> f.pump >> f.sink;
  const Plan p = plan(ch.pipeline());
  const Partition part = partition(p, 4);
  check_invariants(p, part, 4);
  const std::vector<int> per = part.threads_per_shard(p);
  EXPECT_EQ(std::count(per.begin(), per.end(), 0), 3);
}

}  // namespace
}  // namespace infopipe
