// Pooled, NUMA-aware item memory path (ip_mem).
//
// Four layers under test here: the Pool itself (free-list hit/miss, owner
// recycling, the bounded foreign-return stash, adoption), the Item facade
// over both payload representations, the NUMA placement decisions (pools and
// channel rings follow the consumer shard of an injected topology), and the
// end-to-end guarantees — lockstep runs are bit-identical pooled vs
// pooling=off INCLUDING across a live migration, and a multi-shard flow
// under live rebalancing recycles blocks across shards without races (the
// TSan job runs this file).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"
#include "mem/pool.hpp"
#include "shard/sharded_realization.hpp"
#include "shard/topology.hpp"

namespace infopipe {
namespace {

using namespace std::chrono_literals;

/// Flips config().pooling for one scope; every test leaves the process-wide
/// default untouched.
class PoolingGuard {
 public:
  explicit PoolingGuard(bool on) : prev_(config().pooling) {
    config().pooling = on;
  }
  ~PoolingGuard() { config().pooling = prev_; }

 private:
  bool prev_;
};

/// Flips config().inline_payloads for one scope. The pool tests below
/// exercise the POOLED representation, which small payloads skip entirely
/// when inlining is on (the default), so they pin it off explicitly.
class InlineGuard {
 public:
  explicit InlineGuard(bool on) : prev_(config().inline_payloads) {
    config().inline_payloads = on;
  }
  ~InlineGuard() { config().inline_payloads = prev_; }

 private:
  bool prev_;
};

/// CountingSource's shape, but every item carries a pooled (or legacy)
/// payload — tokens would never touch the allocator.
class PayloadSource : public PassiveSource {
 public:
  PayloadSource(std::string name, std::uint64_t count)
      : PassiveSource(std::move(name)), count_(count) {}

 protected:
  Item generate() override {
    if (next_ >= count_) return Item::eos();
    Item x = Item::of<std::uint64_t>(next_);
    x.seq = next_++;
    x.timestamp = pipeline_now();
    return x;
  }

 private:
  std::uint64_t count_;
  std::uint64_t next_ = 0;
};

// ============================ Pool ==========================================

TEST(MemPool, HitMissRecycleOnOwnerThread) {
  mem::Pool p("t");
  mem::PoolScope scope(&p);

  {
    mem::PayloadRef r = mem::make_typed<int>(42);
    ASSERT_NE(r.get_if<int>(), nullptr);
    EXPECT_EQ(*r.get_if<int>(), 42);
    EXPECT_EQ(r.use_count(), 1);
  }
  mem::Pool::Stats s = p.stats();
  EXPECT_EQ(s.misses, 1u);  // first block carved from a slab
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.recycled, 1u);  // released on the owner thread
  EXPECT_GT(s.slab_bytes, 0u);

  {
    // Same size class: the recycled block is served from the free list.
    mem::PayloadRef r = mem::make_typed<int>(7);
    EXPECT_EQ(*r.get_if<int>(), 7);
  }
  s = p.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.recycled, 2u);
}

TEST(MemPool, ForeignReleaseReturnsThroughOwnerStash) {
  mem::Pool owner("owner");
  mem::Pool other("other");

  mem::PayloadRef r;
  {
    mem::PoolScope scope(&owner);
    r = mem::make_typed<int>(1);
  }
  {
    // Last reference dies while ANOTHER pool is current: the block goes to
    // the owner's lock-free return stash, not the releasing pool.
    mem::PoolScope scope(&other);
    r.reset();
  }
  EXPECT_EQ(owner.stats().foreign_returned, 1u);
  EXPECT_EQ(owner.stats().recycled, 0u);
  EXPECT_EQ(other.stats().foreign_adopted, 0u);

  {
    // The owner drains its stash on the next free-list miss: a hit.
    mem::PoolScope scope(&owner);
    mem::PayloadRef r2 = mem::make_typed<int>(2);
    EXPECT_EQ(*r2.get_if<int>(), 2);
  }
  EXPECT_EQ(owner.stats().hits, 1u);
  EXPECT_EQ(owner.stats().misses, 1u);
}

TEST(MemPool, DetachedOwnerMakesForeignReleasesAdopt) {
  mem::Pool owner("owner");
  mem::Pool other("other");

  mem::PayloadRef r;
  {
    mem::PoolScope scope(&owner);
    r = mem::make_typed<int>(5);
  }
  owner.detach();  // the owning runtime died; the stash would never drain
  {
    mem::PoolScope scope(&other);
    r.reset();
  }
  // The block changed home: the releasing thread's pool adopted it and will
  // serve it from its own free list.
  EXPECT_EQ(owner.stats().foreign_returned, 0u);
  EXPECT_EQ(other.stats().foreign_adopted, 1u);
  {
    mem::PoolScope scope(&other);
    mem::PayloadRef r2 = mem::make_typed<int>(6);
    EXPECT_EQ(*r2.get_if<int>(), 6);
  }
  EXPECT_EQ(other.stats().hits, 1u);
  EXPECT_EQ(other.stats().misses, 0u);
}

TEST(MemPool, OversizePayloadsBypassThePool) {
  mem::Pool p("t");
  mem::PoolScope scope(&p);
  const std::vector<std::uint8_t> big(10000, 0xAB);
  {
    mem::PayloadRef r = mem::make_bytes(big.data(), big.size());
    ASSERT_TRUE(r.is_bytes());
    EXPECT_EQ(r.size(), big.size());
    EXPECT_EQ(r.bytes()[9999], 0xAB);
  }
  const mem::Pool::Stats s = p.stats();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.recycled, 0u);  // freed outright, never parked
}

// ============================ Item facade ===================================

TEST(MemItem, PooledCopySharesMoveSteals) {
  mem::Pool p("t");
  mem::PoolScope scope(&p);
  PoolingGuard pooled(true);

  Item a = Item::of<std::string>("payload");
  EXPECT_TRUE(a.pooled());
  EXPECT_EQ(a.use_count(), 1);

  Item b = a;  // copy: one refcount bump, no allocation
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(a.payload<std::string>(), b.payload<std::string>());

  Item c = std::move(b);  // move: steals the reference
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(*c.payload<std::string>(), "payload");

  const mem::Pool::Stats s = p.stats();
  EXPECT_EQ(s.hits + s.misses, 1u);  // ONE allocation for all three items
}

TEST(MemItem, BytesRoundTripInAllRepresentations) {
  const std::uint8_t wire[] = {1, 2, 3, 4, 5};
  {
    // Inline (the default for a 5-byte payload): lives inside the Item.
    InlineGuard inl(true);
    const Item x = Item::of_bytes(wire, sizeof(wire));
    EXPECT_TRUE(x.inlined());
    EXPECT_FALSE(x.pooled());
    ASSERT_TRUE(x.has_bytes());
    EXPECT_EQ(x.bytes_size(), sizeof(wire));
    EXPECT_EQ(x.bytes_data()[4], 5);
    EXPECT_EQ(x.size_bytes, sizeof(wire));
    // Copies own their bytes; mutating via metadata never aliases.
    Item y = x;
    EXPECT_EQ(y.bytes_data()[0], 1);
    EXPECT_NE(y.bytes_data(), x.bytes_data());
  }
  InlineGuard no_inline(false);
  {
    PoolingGuard pooled(true);
    const Item x = Item::of_bytes(wire, sizeof(wire));
    EXPECT_TRUE(x.pooled());
    ASSERT_TRUE(x.has_bytes());
    EXPECT_EQ(x.bytes_size(), sizeof(wire));
    EXPECT_EQ(x.bytes_data()[4], 5);
    EXPECT_EQ(x.size_bytes, sizeof(wire));
  }
  {
    PoolingGuard legacy(false);
    const Item x = Item::of_bytes(wire, sizeof(wire));
    EXPECT_FALSE(x.pooled());
    ASSERT_TRUE(x.has_bytes());
    EXPECT_EQ(x.bytes_size(), sizeof(wire));
    EXPECT_EQ(x.bytes_data()[0], 1);
    // Legacy bytes are a vector payload, so old-style consumers still work.
    ASSERT_NE(x.payload<std::vector<std::uint8_t>>(), nullptr);
    EXPECT_EQ(x.payload<std::vector<std::uint8_t>>()->size(), sizeof(wire));
  }
}

// ============================ NUMA placement ================================

TEST(MemNuma, ChannelRingPlacementFollowsRequests) {
  shard::ShardChannel ch("x", 4, FullPolicy::kBlock, EmptyPolicy::kBlock,
                         /*numa_node=*/1);
  EXPECT_EQ(ch.ring_node(), 1);
  ch.place_ring(0);  // empty ring: re-placement allowed
  EXPECT_EQ(ch.ring_node(), 0);

  Item x = Item::token();
  ASSERT_TRUE(ch.try_push(x));
  ch.place_ring(1);  // non-empty: must keep the old storage
  EXPECT_EQ(ch.ring_node(), 0);
  (void)ch.try_pop();
  ch.place_ring(1);
  EXPECT_EQ(ch.ring_node(), 1);
}

TEST(MemNuma, PoolsAndRingsLandOnConsumerNodeUnderInjectedTopology) {
  // Synthetic 2-node box: cpu0 -> node0, cpu1 -> node1. Shard i pins to
  // core i, so shard0 is a node-0 shard and shard1 a node-1 shard — however
  // many cores the machine running this test really has.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  opt.topology = shard::Topology({0, 1});
  shard::ShardGroup group(2, std::move(opt));

  EXPECT_EQ(group.node_of_shard(0), 0);
  EXPECT_EQ(group.node_of_shard(1), 1);
  // Each shard's payload pool carves slabs on its own node.
  EXPECT_EQ(group.runtime(0).pool().numa_node(), 0);
  EXPECT_EQ(group.runtime(1).pool().numa_node(), 1);

  PayloadSource src("src", 1000000);
  ClockedPump fill("fill", 300.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());

  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  // The cut's ring storage was requested on the CONSUMER shard's node.
  EXPECT_EQ(chan->ring_node(), group.node_of_shard(chan->to_shard()));

  // The numa_node gauge is published per shard.
  const obs::MetricsSnapshot ms = sr.metrics_snapshot();
  const obs::MetricValue* g0 = ms.find("shard0.mem.pool.numa_node");
  const obs::MetricValue* g1 = ms.find("shard1.mem.pool.numa_node");
  ASSERT_NE(g0, nullptr);
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g0->value, 0.0);
  EXPECT_EQ(g1->value, 1.0);
}

TEST(MemNuma, RingFollowsConsumerAcrossMigrationWhenEmpty) {
  // Three shards on a synthetic 2-node box: shards 0 and 1 on node 0,
  // shard 2 on node 1. When the consumer section migrates 1 -> 2 with the
  // ring drained, the persisting channel re-places its storage on node 1.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  opt.topology = shard::Topology({0, 0, 1});
  shard::ShardGroup group(3, std::move(opt));

  PayloadSource src("src", 50);  // finite: the flow drains, the ring empties
  ClockedPump fill("fill", 500.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 500.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());

  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  const int old_cons = chan->to_shard();
  ASSERT_NE(old_cons, 2);
  std::size_t cons_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "drain") cons_sec = i;
  }
  ASSERT_LT(cons_sec, sr.section_count());

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  ASSERT_TRUE(sr.finished());  // all 50 items delivered; ring empty
  ASSERT_EQ(chan->depth(), 0u);

  (void)sr.migrate_section(cons_sec, 2);
  shard::ShardChannel* live = sr.find_live_channel("buf");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->to_shard(), 2);
  EXPECT_EQ(live->ring_node(), 1);  // storage followed the consumer's node

  sr.shutdown();
  group.step_until(rt::seconds(2));
}

// ============================ lockstep equivalence ==========================

/// Everything flow-visible one deterministic run produces; pooled and
/// legacy runs must agree on every field, bit for bit.
struct LockstepResult {
  std::vector<std::uint64_t> seqs;
  std::uint64_t payload_sum = 0;
  std::uint64_t items_moved = 0;
  bool eos = false;
};

LockstepResult run_lockstep_scenario(bool pooling) {
  PoolingGuard guard(pooling);
  // The uint64_t payloads would go inline (and never touch either allocator
  // path); this scenario is specifically about pooled vs legacy.
  InlineGuard no_inline(false);

  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  PayloadSource src("src", 1000000);
  ClockedPump fill("fill", 400.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 200.0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  EXPECT_NE(chan, nullptr);
  const int prod = chan->from_shard();
  const int cons = chan->to_shard();
  std::size_t cons_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "drain") cons_sec = i;
  }

  LockstepResult r;
  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  // Live migration mid-flow: collapse the cut (consumer joins the producer
  // shard, queued ring items fold back into the buffer) ...
  r.items_moved += sr.migrate_section(cons_sec, prod).items_moved;
  for (rt::Time t = rt::seconds(1); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  // ... and re-split it (fresh channel, buffer contents carried over).
  r.items_moved += sr.migrate_section(cons_sec, cons).items_moved;
  for (rt::Time t = rt::seconds(2); t <= rt::seconds(3);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  sr.shutdown();
  group.step_until(rt::seconds(4));

  r.seqs = sink.seqs();
  for (const CollectorSink::Arrival& a : sink.arrivals()) {
    const std::uint64_t* v = a.item.payload<std::uint64_t>();
    EXPECT_NE(v, nullptr);
    EXPECT_EQ(a.item.pooled(), pooling);  // the representation under test
    if (v != nullptr) r.payload_sum += *v;
  }
  r.eos = sink.eos_seen();
  return r;
}

TEST(MemLockstep, PooledAndLegacyRunsAreBitIdenticalAcrossMigration) {
  const LockstepResult pooled = run_lockstep_scenario(true);
  const LockstepResult legacy = run_lockstep_scenario(false);
  // The flow delivered real work in both runs...
  EXPECT_GT(pooled.seqs.size(), 100u);
  EXPECT_GT(pooled.items_moved, 0u);
  // ... and pooling is a pure representation change: identical delivery
  // order, identical payloads, identical migration behaviour.
  EXPECT_EQ(pooled.seqs, legacy.seqs);
  EXPECT_EQ(pooled.payload_sum, legacy.payload_sum);
  EXPECT_EQ(pooled.items_moved, legacy.items_moved);
  EXPECT_EQ(pooled.eos, legacy.eos);
}

// ============================ cross-shard recycling stress ==================

TEST(MemStress, RecyclingAcrossShardsUnderLiveRebalancing) {
  // Real kernel threads, real clocks, three shards, two cuts — and the
  // middle section migrating around the group while payload blocks stream
  // through. TSan runs this: the pooled release path (owner free list vs
  // foreign stash vs adoption) must be race-free under live rebalancing.
  PoolingGuard pooled(true);
  InlineGuard no_inline(false);  // uint64_t payloads must exercise the pool
  shard::ShardGroup group(3);

  PayloadSource src("src", 1000000);
  ClockedPump fill("fill", 3000.0);
  Buffer b1("b1", 128);
  ClockedPump mid("mid", 3000.0);
  Buffer b2("b2", 128);
  ClockedPump drain("drain", 3000.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> b1 >> mid >> b2 >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());

  std::size_t mid_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "mid") mid_sec = i;
  }
  ASSERT_LT(mid_sec, sr.section_count());
  ASSERT_TRUE(sr.section_migratable(mid_sec));

  sr.start();
  // Bounce the middle section across all three shards while items flow:
  // cuts collapse, re-create and rebind under load.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(100ms);
    const int cur = sr.shard_of_section(mid_sec);
    try {
      (void)sr.migrate_section(mid_sec, (cur + 1) % group.size(),
                               std::chrono::milliseconds(10000));
    } catch (const rt::RuntimeError&) {
      // A quiesce timeout under heavy sanitizer load is not what this test
      // is about; the Migration destructor restarted the flow.
    }
  }
  std::this_thread::sleep_for(200ms);
  sr.shutdown();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();  // joins host threads: direct pool reads below are race-free

  EXPECT_GT(sink.count(), 100u);
  std::uint64_t hits = 0, recycled = 0, cross_shard = 0;
  for (int s = 0; s < group.size(); ++s) {
    const mem::Pool::Stats st = group.runtime(s).pool().stats();
    hits += st.hits;
    recycled += st.recycled;
    cross_shard += st.foreign_returned + st.foreign_adopted;
  }
  // Blocks were recycled (the pool actually pooled) and some of that
  // recycling crossed shards (payloads died on a different shard than the
  // one that allocated them).
  EXPECT_GT(hits, 0u);
  EXPECT_GT(recycled + cross_shard, 0u);
  EXPECT_GT(cross_shard, 0u);
}

}  // namespace
}  // namespace infopipe
