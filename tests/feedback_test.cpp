// Feedback toolkit tests: controllers (pure math), sensors in pipelines, and
// closed loops steering pumps — §3.1's "more elaborate approaches adjust CPU
// allocations among pipeline stages according to feedback from buffer fill
// levels" and the producer-rate pump of the distributed player.
#include <gtest/gtest.h>

#include <cmath>

#include "core/infopipes.hpp"
#include "feedback/controller.hpp"
#include "feedback/toolkit.hpp"

namespace infopipe::fb {
namespace {

// ---------- controllers -----------------------------------------------------------

TEST(LowPass, ConvergesToConstantInput) {
  LowPassFilter f(0.3);
  for (int i = 0; i < 60; ++i) f.update(10.0);
  EXPECT_NEAR(f.value(), 10.0, 1e-6);
}

TEST(LowPass, FirstSamplePrimes) {
  LowPassFilter f(0.1);
  EXPECT_FALSE(f.primed());
  f.update(42.0);
  EXPECT_TRUE(f.primed());
  EXPECT_EQ(f.value(), 42.0);
}

TEST(LowPass, SmoothsSpikes) {
  LowPassFilter f(0.2);
  f.update(10.0);
  f.update(100.0);  // spike
  EXPECT_LT(f.value(), 30.0);
  EXPECT_GT(f.value(), 10.0);
}

TEST(PControl, ProportionalAndClamped) {
  PController c(2.0, -5.0, 5.0);
  EXPECT_EQ(c.update(1.0), 2.0);
  EXPECT_EQ(c.update(-1.0), -2.0);
  EXPECT_EQ(c.update(100.0), 5.0);   // clamped high
  EXPECT_EQ(c.update(-100.0), -5.0); // clamped low
}

TEST(PIControl, EliminatesSteadyStateError) {
  // Plant: value += 0.1 * u each step; setpoint 1.0 from 0.
  PIController c(0.5, 2.0, -10.0, 10.0);
  double value = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double u = c.update(1.0 - value, 0.01);
    value += 0.1 * u;
  }
  EXPECT_NEAR(value, 1.0, 0.01);
}

TEST(PIControl, AntiWindupBoundsIntegral) {
  PIController c(0.0, 1.0, -1.0, 1.0);
  for (int i = 0; i < 1000; ++i) (void)c.update(100.0, 1.0);
  EXPECT_LE(std::abs(c.integral()), 1.0 + 1e-9);
  // Recovery after the error flips sign must be quick (no windup).
  double u = 0.0;
  for (int i = 0; i < 3; ++i) u = c.update(-100.0, 1.0);
  EXPECT_LT(u, 0.0);
}

// ---------- PeriodicTask ------------------------------------------------------------

TEST(PeriodicTask, RunsAtThePeriodUntilStopped) {
  rt::Runtime rtm;
  std::vector<rt::Time> ticks;
  PeriodicTask task(rtm, "tick", rt::milliseconds(10),
                    [&](rt::Time now) { ticks.push_back(now); });
  task.start();
  rtm.run_until(rt::milliseconds(55));
  EXPECT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks.front(), rt::milliseconds(10));
  task.stop();
  rtm.run_until(rt::milliseconds(200));
  EXPECT_LE(ticks.size(), 6u);
}

// ---------- sensors in pipelines ------------------------------------------------------

TEST(RateSensor, MeasuresPumpRate) {
  rt::Runtime rtm;
  CountingSource src("src", 200);
  ClockedPump pump("pump", 50.0);
  RateSensor sensor("rate", 0.3, rt::milliseconds(200), /*report=*/false);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(2));
  EXPECT_NEAR(sensor.rate_hz(), 50.0, 2.0);
}

TEST(RateSensor, BroadcastsReports) {
  rt::Runtime rtm;
  CountingSource src("src", 200);
  ClockedPump pump("pump", 100.0);
  RateSensor sensor("rate", /*alpha=*/0.8, rt::milliseconds(100));
  CollectorSink sink("sink");
  auto ch = src >> pump >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  int reports = 0;
  double last = 0.0;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventSensorReport) {
      ++reports;
      last = e.get<SensorReport>()->value;
    }
  });
  real.start();
  rtm.run();
  // 200 items at 100 Hz = 2 s of flow with 100 ms windows.
  EXPECT_GE(reports, 15);
  EXPECT_EQ(reports, sensor.reports_sent());
  EXPECT_NEAR(last, 100.0, 5.0);
}

TEST(LatencySensor, SeesQueueingDelay) {
  rt::Runtime rtm;
  CountingSource src("src", 40);
  ClockedPump fill("fill", 200.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 50.0);  // slower: queueing delay builds up
  LatencySensor sensor("lat", 0.5, 0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  // Items sit in the buffer: smoothed latency must be well above zero.
  EXPECT_GT(sensor.latency_ms(), 50.0);
}

// ---------- closed loop: buffer fill steers an adaptive pump ---------------------------

TEST(FeedbackLoop, HoldsBufferAtSetpoint) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  ClockedPump fill("fill", 100.0);  // producer fixed at 100 Hz
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 10.0);  // starts way too slow
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());

  // Keep the buffer at 50%: reading = fill fraction, output = drain rate.
  // Gains are NEGATIVE: raising the drain rate lowers the fill level.
  FeedbackLoop loop(
      rtm, "fill-ctl", rt::milliseconds(50), fill_fraction(buf),
      /*setpoint=*/0.5,
      PIController(/*kp=*/-200.0, /*ki=*/-400.0, /*out_min=*/1.0,
                   /*out_max=*/1000.0),
      pump_rate_actuator(real, drain));

  real.start();
  loop.start();
  rtm.run_until(rt::seconds(20));
  loop.stop();

  // Converged: drain rate ends near the producer's 100 Hz and the fill level
  // sits near the setpoint.
  EXPECT_NEAR(drain.rate_hz(), 100.0, 15.0);
  const double frac =
      static_cast<double>(buf.fill()) / static_cast<double>(buf.capacity());
  EXPECT_NEAR(frac, 0.5, 0.15);
  real.shutdown();
  rtm.run();
}

TEST(FeedbackLoop, TracksProducerRateChange) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  AdaptivePump fill("fill", 100.0);
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  FeedbackLoop loop(rtm, "fill-ctl", rt::milliseconds(50), fill_fraction(buf),
                    0.5, PIController(-200.0, -400.0, 1.0, 1000.0),
                    pump_rate_actuator(real, drain));
  real.start();
  loop.start();
  rtm.run_until(rt::seconds(10));
  // Disturbance: the producer speeds up to 250 Hz mid-run.
  real.post_event_to(fill, Event{kEventQualityHint, 250.0});
  rtm.run_until(rt::seconds(30));
  EXPECT_NEAR(drain.rate_hz(), 250.0, 30.0);
  loop.stop();
  real.shutdown();
  rtm.run();
}

}  // namespace
}  // namespace infopipe::fb
