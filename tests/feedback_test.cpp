// Feedback toolkit tests: controllers (pure math), sensors in pipelines, and
// closed loops steering pumps — §3.1's "more elaborate approaches adjust CPU
// allocations among pipeline stages according to feedback from buffer fill
// levels" and the producer-rate pump of the distributed player.
#include <gtest/gtest.h>

#include <cmath>

#include "core/infopipes.hpp"
#include "feedback/controller.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"

namespace infopipe::fb {
namespace {

// ---------- controllers -----------------------------------------------------------

TEST(LowPass, ConvergesToConstantInput) {
  LowPassFilter f(0.3);
  for (int i = 0; i < 60; ++i) f.update(10.0);
  EXPECT_NEAR(f.value(), 10.0, 1e-6);
}

TEST(LowPass, FirstSamplePrimes) {
  LowPassFilter f(0.1);
  EXPECT_FALSE(f.primed());
  f.update(42.0);
  EXPECT_TRUE(f.primed());
  EXPECT_EQ(f.value(), 42.0);
}

TEST(LowPass, SmoothsSpikes) {
  LowPassFilter f(0.2);
  f.update(10.0);
  f.update(100.0);  // spike
  EXPECT_LT(f.value(), 30.0);
  EXPECT_GT(f.value(), 10.0);
}

TEST(PControl, ProportionalAndClamped) {
  PController c(2.0, -5.0, 5.0);
  EXPECT_EQ(c.update(1.0), 2.0);
  EXPECT_EQ(c.update(-1.0), -2.0);
  EXPECT_EQ(c.update(100.0), 5.0);   // clamped high
  EXPECT_EQ(c.update(-100.0), -5.0); // clamped low
}

TEST(PIControl, EliminatesSteadyStateError) {
  // Plant: value += 0.1 * u each step; setpoint 1.0 from 0.
  PIController c(0.5, 2.0, -10.0, 10.0);
  double value = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double u = c.update(1.0 - value, 0.01);
    value += 0.1 * u;
  }
  EXPECT_NEAR(value, 1.0, 0.01);
}

TEST(PIControl, AntiWindupBoundsIntegral) {
  PIController c(0.0, 1.0, -1.0, 1.0);
  for (int i = 0; i < 1000; ++i) (void)c.update(100.0, 1.0);
  EXPECT_LE(std::abs(c.integral()), 1.0 + 1e-9);
  // Recovery after the error flips sign must be quick (no windup).
  double u = 0.0;
  for (int i = 0; i < 3; ++i) u = c.update(-100.0, 1.0);
  EXPECT_LT(u, 0.0);
}

// ---------- PeriodicTask ------------------------------------------------------------

TEST(PeriodicTask, RunsAtThePeriodUntilStopped) {
  rt::Runtime rtm;
  std::vector<rt::Time> ticks;
  PeriodicTask task(rtm, "tick", rt::milliseconds(10),
                    [&](rt::Time now) { ticks.push_back(now); });
  task.start();
  rtm.run_until(rt::milliseconds(55));
  EXPECT_EQ(ticks.size(), 5u);
  EXPECT_EQ(ticks.front(), rt::milliseconds(10));
  task.stop();
  rtm.run_until(rt::milliseconds(200));
  EXPECT_LE(ticks.size(), 6u);
}

TEST(PeriodicTask, StopThenRestartResumesTicking) {
  rt::Runtime rtm;
  int ticks = 0;
  PeriodicTask task(rtm, "tick", rt::milliseconds(10),
                    [&](rt::Time) { ++ticks; });
  task.start();
  rtm.run_until(rt::milliseconds(35));
  task.stop();
  rtm.run_until(rt::milliseconds(200));
  EXPECT_FALSE(task.active());
  const int after_stop = ticks;
  EXPECT_GE(after_stop, 3);
  task.start();
  EXPECT_TRUE(task.active());
  rtm.run_until(rt::milliseconds(260));
  EXPECT_GE(ticks, after_stop + 4);
  task.stop();
  rtm.run_until(rt::milliseconds(400));
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, RestartBeforeTheLoopNoticesStopKeepsOneLoop) {
  // stop() is only observed at the task's next wakeup; a start() issued
  // before that must cancel the stop WITHOUT stacking a second ticking
  // loop (which would double the effective rate).
  rt::Runtime rtm;
  int ticks = 0;
  PeriodicTask task(rtm, "tick", rt::milliseconds(10),
                    [&](rt::Time) { ++ticks; });
  task.start();
  rtm.run_until(rt::milliseconds(35));
  task.stop();
  task.start();  // the loop never saw the stop flag
  rtm.run_until(rt::milliseconds(135));
  // 135 ms at one tick per 10 ms: a doubled loop would be near 20+ ticks.
  EXPECT_GE(ticks, 12);
  EXPECT_LE(ticks, 14);
}

// ---------- sensors in pipelines ------------------------------------------------------

TEST(RateSensor, MeasuresPumpRate) {
  rt::Runtime rtm;
  CountingSource src("src", 200);
  ClockedPump pump("pump", 50.0);
  RateSensor sensor("rate", 0.3, rt::milliseconds(200), /*report=*/false);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(2));
  EXPECT_NEAR(sensor.rate_hz(), 50.0, 2.0);
}

TEST(RateSensor, BroadcastsReports) {
  rt::Runtime rtm;
  CountingSource src("src", 200);
  ClockedPump pump("pump", 100.0);
  RateSensor sensor("rate", /*alpha=*/0.8, rt::milliseconds(100));
  CollectorSink sink("sink");
  auto ch = src >> pump >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  int reports = 0;
  double last = 0.0;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventSensorReport) {
      ++reports;
      last = e.get<SensorReport>()->value;
    }
  });
  real.start();
  rtm.run();
  // 200 items at 100 Hz = 2 s of flow with 100 ms windows.
  EXPECT_GE(reports, 15);
  EXPECT_EQ(reports, sensor.reports_sent());
  EXPECT_NEAR(last, 100.0, 5.0);
}

TEST(LatencySensor, IgnoresUnstampedItems) {
  // A source that never stamps its items: every timestamp stays at the
  // Item default of 0, which used to read as the whole clock epoch and
  // poison the low-pass filter with multi-second bogus latencies.
  class UnstampedSource : public PassiveSource {
   public:
    explicit UnstampedSource(std::string name) : PassiveSource(std::move(name)) {}

   protected:
    Item generate() override {
      if (n_ >= 50) return Item::eos();
      Item x = Item::token();
      x.seq = n_++;
      return x;
    }

   private:
    std::uint64_t n_ = 0;
  };

  rt::Runtime rtm;
  UnstampedSource src("src");
  ClockedPump pump("pump", 100.0);
  LatencySensor sensor("lat", 0.5, 0);
  CollectorSink sink("sink");
  auto ch = src >> pump >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::seconds(5));
  // No stamped item ever arrived: the filter must stay unprimed at 0, not
  // report seconds' worth of phantom queueing delay.
  EXPECT_EQ(sensor.latency_ms(), 0.0);
}

TEST(LatencySensor, SeesQueueingDelay) {
  rt::Runtime rtm;
  CountingSource src("src", 40);
  ClockedPump fill("fill", 200.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 50.0);  // slower: queueing delay builds up
  LatencySensor sensor("lat", 0.5, 0);
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sensor >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  // Items sit in the buffer: smoothed latency must be well above zero.
  EXPECT_GT(sensor.latency_ms(), 50.0);
}

// ---------- closed loop: buffer fill steers an adaptive pump ---------------------------

TEST(FeedbackLoop, HoldsBufferAtSetpoint) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  ClockedPump fill("fill", 100.0);  // producer fixed at 100 Hz
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 10.0);  // starts way too slow
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());

  // Keep the buffer at 50%: reading = fill fraction, output = drain rate.
  // Gains are NEGATIVE: raising the drain rate lowers the fill level. Both
  // ends are named endpoints resolved through the realization.
  auto loop = make_loop(
      real, LoopSpec{.name = "fill-ctl",
                     .period = rt::milliseconds(50),
                     .sensor = fill_fraction("buf"),
                     .setpoint = 0.5,
                     .controller = PIController(/*kp=*/-200.0, /*ki=*/-400.0,
                                                /*out_min=*/1.0,
                                                /*out_max=*/1000.0),
                     .actuator = pump_rate("drain")});

  real.start();
  loop->start();
  rtm.run_until(rt::seconds(20));
  loop->stop();

  // Converged: drain rate ends near the producer's 100 Hz and the fill level
  // sits near the setpoint.
  EXPECT_NEAR(drain.rate_hz(), 100.0, 15.0);
  const double frac =
      static_cast<double>(buf.fill()) / static_cast<double>(buf.capacity());
  EXPECT_NEAR(frac, 0.5, 0.15);
  EXPECT_NEAR(loop->last_error(), 0.0, 0.15);
  EXPECT_GT(loop->steps(), 100);
  EXPECT_GT(loop->actuations(), 100);

  // The loop publishes itself through the registry.
  const obs::MetricsSnapshot ms = rtm.metrics().snapshot();
  const obs::MetricValue* out = ms.find("fb.loop.fill-ctl.output");
  ASSERT_NE(out, nullptr);
  EXPECT_NEAR(out->value, drain.rate_hz(), 20.0);
  const obs::MetricValue* steps = ms.find("fb.loop.fill-ctl.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->count, static_cast<std::uint64_t>(loop->steps()));
  ASSERT_NE(ms.find("fb.loop.fill-ctl.error"), nullptr);
  ASSERT_NE(ms.find("fb.loop.fill-ctl.actuations"), nullptr);

  real.shutdown();
  rtm.run();
}

TEST(FeedbackLoop, UnknownEndpointNamesThrow) {
  rt::Runtime rtm;
  CountingSource src("src", 100);
  AdaptivePump pump("pump", 10.0);
  Buffer buf("buf", 8);
  FreeRunningPump drain("drain");
  CountingSink sink("sink");
  auto ch = src >> pump >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  EXPECT_THROW((void)resolve_reading(real, fill_fraction("nope")),
               CompositionError);
  EXPECT_THROW((void)resolve_reading(real, fill_fraction("pump")),
               CompositionError);  // not a buffer
  EXPECT_THROW((void)resolve_reading(real, probe_value("buf")),
               CompositionError);  // not a probeable sensor
  EXPECT_THROW((void)resolve_actuate(real, pump_rate("drain")),
               CompositionError);  // not an AdaptivePump
  EXPECT_NO_THROW((void)resolve_actuate(real, quality_hint("drain")));
  EXPECT_NO_THROW((void)resolve_reading(real, probe_value("pump")));
}

TEST(FeedbackLoop, StallRateSensorsReadBufferBlocks) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  FreeRunningPump fill("fill");  // pushes as fast as it can: blocks on buf
  Buffer buf("buf", 4, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 50.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  auto producer_rate = resolve_reading(real, producer_stall_rate("buf"));
  real.start();
  (void)producer_rate();  // primes the window
  rtm.run_until(rt::seconds(5));
  // The producer hits the full buffer roughly once per drained item.
  EXPECT_NEAR(producer_rate(), 50.0, 15.0);
  real.shutdown();
  rtm.run();
}

TEST(FeedbackLoop, ResolvedEndpointsDriveRawLoop) {
  // The raw FeedbackLoop (no LoopSpec/make_loop) fed from resolved named
  // endpoints — the migration target of the old by-reference helpers, with
  // identical control behaviour.
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  ClockedPump fill("fill", 100.0);
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 10.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  FeedbackLoop loop(rtm, "compat-ctl", rt::milliseconds(50),
                    resolve_reading(real, fill_fraction("buf")), 0.5,
                    PIController(-200.0, -400.0, 1.0, 1000.0),
                    resolve_actuate(real, pump_rate("drain")));
  real.start();
  loop.start();
  rtm.run_until(rt::seconds(20));
  loop.stop();
  EXPECT_NEAR(drain.rate_hz(), 100.0, 15.0);
  real.shutdown();
  rtm.run();
}

TEST(FeedbackLoop, TracksProducerRateChange) {
  rt::Runtime rtm;
  CountingSource src("src", 1000000);
  AdaptivePump fill("fill", 100.0);
  Buffer buf("buf", 100, FullPolicy::kDropNewest, EmptyPolicy::kNil);
  AdaptivePump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  auto loop = make_loop(
      real, LoopSpec{.name = "fill-ctl",
                     .period = rt::milliseconds(50),
                     .sensor = fill_fraction("buf"),
                     .setpoint = 0.5,
                     .controller = PIController(-200.0, -400.0, 1.0, 1000.0),
                     .actuator = pump_rate("drain")});
  real.start();
  loop->start();
  rtm.run_until(rt::seconds(10));
  // Disturbance: the producer speeds up to 250 Hz mid-run, actuated through
  // its own named endpoint rather than a component reference.
  resolve_actuate(real, pump_rate("fill"))(250.0);
  rtm.run_until(rt::seconds(30));
  EXPECT_NEAR(drain.rate_hz(), 250.0, 30.0);
  loop->stop();
  real.shutdown();
  rtm.run();
}

}  // namespace
}  // namespace infopipe::fb
