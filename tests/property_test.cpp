// Property-based tests: randomly generated pipelines executed against a
// reference simulation.
//
// The paper's central transparency promise is behavioural: however a
// pipeline is assembled — any mix of activity styles, any pump position,
// any buffer placement — the delivered item stream must equal what a plain
// sequential composition of the component functions would produce. We
// generate hundreds of random pipelines, run them through the full
// middleware (planner, coroutines, buffers, events) and compare against a
// pure-functional reference.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "core/infopipes.hpp"

namespace infopipe {
namespace {

/// Mixes the process-wide base seed (INFOPIPE_SEED, core/config.hpp) into a
/// case-local seed: one env var re-rolls every randomized suite, and the
/// default base (1) reproduces the historical sequences exactly.
unsigned test_seed(unsigned k) {
  return k + static_cast<unsigned>(config().seed) - 1u;
}

// ---------- the component vocabulary -------------------------------------------
// Each mid-pipeline element applies one of these integer transformations to
// the flow; the reference simulator applies the same ones to a plain vector.

enum class Op {
  kAddOne,      // one-to-one:   x -> x+1
  kDouble,      // one-to-one:   x -> 2x
  kDropOdd,     // filtering:    keep only even values
  kPairSum,     // defragment:   (a,b) -> a+b
  kSplit,       // fragment:     x -> x, x+1000
};
constexpr Op kAllOps[] = {Op::kAddOne, Op::kDouble, Op::kDropOdd,
                          Op::kPairSum, Op::kSplit};

std::vector<long> apply_reference(Op op, const std::vector<long>& in) {
  std::vector<long> out;
  switch (op) {
    case Op::kAddOne:
      for (long v : in) out.push_back(v + 1);
      break;
    case Op::kDouble:
      for (long v : in) out.push_back(v * 2);
      break;
    case Op::kDropOdd:
      for (long v : in) {
        if (v % 2 == 0) out.push_back(v);
      }
      break;
    case Op::kPairSum:
      for (std::size_t i = 0; i + 1 < in.size(); i += 2) {
        out.push_back(in[i] + in[i + 1]);
      }
      break;
    case Op::kSplit:
      for (long v : in) {
        out.push_back(v);
        out.push_back(v + 1000);
      }
      break;
  }
  return out;
}

// Style in which a component is implemented (chosen at random, must not
// matter).
enum class Impl { kConsumer, kProducer, kActive, kFunction };

bool op_is_one_to_one(Op op) {
  return op == Op::kAddOne || op == Op::kDouble;
}

long value_of(const Item& x) { return static_cast<long>(x.kind); }
Item item_of(long v) {
  Item x = Item::token(static_cast<int>(v));
  return x;
}

std::unique_ptr<Component> make_component(const std::string& name, Op op,
                                          Impl impl) {
  auto transform1 = [op](long v) {
    return op == Op::kAddOne ? v + 1 : v * 2;
  };
  switch (impl) {
    case Impl::kFunction:
      return std::make_unique<LambdaFunction>(name, [transform1](Item x) {
        return item_of(transform1(value_of(x)));
      });
    case Impl::kConsumer:
      return std::make_unique<LambdaConsumer>(
          name, [op, transform1, saved = std::optional<long>{}](
                    Item x, const std::function<void(Item)>& emit) mutable {
            const long v = value_of(x);
            switch (op) {
              case Op::kAddOne:
              case Op::kDouble:
                emit(item_of(transform1(v)));
                break;
              case Op::kDropOdd:
                if (v % 2 == 0) emit(item_of(v));
                break;
              case Op::kPairSum:
                if (saved) {
                  emit(item_of(*saved + v));
                  saved.reset();
                } else {
                  saved = v;
                }
                break;
              case Op::kSplit:
                emit(item_of(v));
                emit(item_of(v + 1000));
                break;
            }
          });
    case Impl::kProducer:
      return std::make_unique<LambdaProducer>(
          name, [op, transform1, saved = std::optional<long>{}](
                    const std::function<Item()>& take) mutable -> Item {
            switch (op) {
              case Op::kAddOne:
              case Op::kDouble:
                return item_of(transform1(value_of(take())));
              case Op::kDropOdd:
                for (;;) {
                  const long v = value_of(take());
                  if (v % 2 == 0) return item_of(v);
                }
              case Op::kPairSum: {
                const long a = value_of(take());
                const long b = value_of(take());
                return item_of(a + b);
              }
              case Op::kSplit:
                if (saved) {
                  const long s = *saved;
                  saved.reset();
                  return item_of(s);
                } else {
                  const long v = value_of(take());
                  saved = v + 1000;
                  return item_of(v);
                }
            }
            return Item::nil();
          });
    case Impl::kActive:
      return std::make_unique<LambdaActive>(
          name, [op, transform1](const std::function<Item()>& take,
                                 const std::function<void(Item)>& put) {
            for (;;) {
              switch (op) {
                case Op::kAddOne:
                case Op::kDouble:
                  put(item_of(transform1(value_of(take()))));
                  break;
                case Op::kDropOdd: {
                  const long v = value_of(take());
                  if (v % 2 == 0) put(item_of(v));
                  break;
                }
                case Op::kPairSum: {
                  const long a = value_of(take());
                  const long b = value_of(take());
                  put(item_of(a + b));
                  break;
                }
                case Op::kSplit: {
                  const long v = value_of(take());
                  put(item_of(v));
                  put(item_of(v + 1000));
                  break;
                }
              }
            }
          });
  }
  return nullptr;
}

// ---------- random pipeline construction ------------------------------------------

struct RandomPipeline {
  std::vector<std::unique_ptr<Component>> owned;
  std::vector<Op> ops;      // in order, upstream to downstream
  int pump_slot = 0;        // component index the pump precedes
  std::vector<int> buffer_after;  // slots with a buffer (plus extra pump)
};

TEST(PropertyPipelines, RandomChainsMatchReferenceSimulation) {
  constexpr int kCases = 120;
  constexpr std::uint64_t kInputs = 64;

  std::vector<long> input(kInputs);
  std::iota(input.begin(), input.end(), 0);

  for (int seed = 0; seed < kCases; ++seed) {
    std::mt19937 rng(test_seed(static_cast<unsigned>(seed) * 7919 + 13));
    const int n_stages = std::uniform_int_distribution<int>(1, 5)(rng);

    // Choose operations and implementations.
    std::vector<Op> ops;
    std::vector<Impl> impls;
    for (int i = 0; i < n_stages; ++i) {
      const Op op =
          kAllOps[std::uniform_int_distribution<std::size_t>(0, 4)(rng)];
      ops.push_back(op);
      // Function style only expresses one-to-one ops.
      const int max_impl = op_is_one_to_one(op) ? 3 : 2;
      impls.push_back(static_cast<Impl>(
          std::uniform_int_distribution<int>(0, max_impl)(rng)));
    }

    // Reference result.
    std::vector<long> expected = input;
    for (Op op : ops) expected = apply_reference(op, expected);

    // Optional buffer splits the chain into two pump-driven sections.
    const bool with_buffer =
        n_stages >= 2 && std::uniform_int_distribution<int>(0, 1)(rng) == 1;
    const int buffer_slot =
        with_buffer
            ? std::uniform_int_distribution<int>(1, n_stages - 1)(rng)
            : -1;
    // Pump positions within each section.
    const int pump1_slot = std::uniform_int_distribution<int>(
        0, with_buffer ? buffer_slot : n_stages)(rng);
    const int pump2_slot =
        with_buffer ? std::uniform_int_distribution<int>(buffer_slot,
                                                         n_stages)(rng)
                    : -1;

    // Build.
    rt::Runtime rtm;
    std::vector<Item> items;
    items.reserve(input.size());
    for (long v : input) items.push_back(item_of(v));
    VectorSource src("src", std::move(items));
    FreeRunningPump pump1("pump1");
    FreeRunningPump pump2("pump2");
    Buffer buf("buf", 4);
    CollectorSink sink("sink");
    std::vector<std::unique_ptr<Component>> mids;

    Pipeline p;
    Component* prev = &src;
    auto link = [&](Component& next) {
      p.connect(*prev, 0, next, 0);
      prev = &next;
    };
    for (int slot = 0; slot <= n_stages; ++slot) {
      if (slot == pump1_slot) link(pump1);
      if (with_buffer && slot == buffer_slot) link(buf);
      if (with_buffer && slot == pump2_slot) link(pump2);
      if (slot < n_stages) {
        mids.push_back(make_component("c" + std::to_string(slot), ops[slot],
                                      impls[static_cast<std::size_t>(slot)]));
        link(*mids.back());
      }
    }
    link(sink);

    SCOPED_TRACE("seed=" + std::to_string(seed));
    Realization real(rtm, p);
    real.start();
    rtm.run();

    // Compare delivered stream with the reference.
    std::vector<long> got;
    for (const auto& a : sink.arrivals()) got.push_back(value_of(a.item));
    EXPECT_EQ(got, expected)
        << "pipeline behaviour depends on style/threading (seed " << seed
        << ", stages=" << n_stages << ")";
    EXPECT_TRUE(sink.eos_seen());

    // Clean teardown must leave no live threads behind.
    real.shutdown();
    rtm.run();
    EXPECT_EQ(rtm.live_threads(), 0u);
  }
}

TEST(PropertyPipelines, RandomMulticastTreesDeliverEverywhere) {
  // Random fan-out trees: a pump feeds a multicast tee whose branches are
  // random chains (possibly with further tees); every leaf sink must see
  // the complete flow, transformed by exactly its path's stages.
  for (int seed = 0; seed < 40; ++seed) {
    std::mt19937 rng(test_seed(static_cast<unsigned>(seed) * 131 + 5));
    rt::Runtime rtm;
    constexpr std::uint64_t kInputs = 32;
    CountingSource src("src", kInputs);
    FreeRunningPump pump("pump");
    std::vector<std::unique_ptr<Component>> owned;
    std::vector<CollectorSink*> sinks;
    std::vector<int> adds;  // per-sink total of +1 stages on its path

    Pipeline p;
    p.connect(src, 0, pump, 0);

    // Recursive random tree builder.
    std::function<void(Component&, int, int, int)> grow =
        [&](Component& from, int out_port, int depth, int added) {
          // Random chain of 0-2 “+1” stages.
          Component* prev = &from;
          int prev_port = out_port;
          const int stages = std::uniform_int_distribution<int>(0, 2)(rng);
          for (int s = 0; s < stages; ++s) {
            owned.push_back(std::make_unique<LambdaFunction>(
                "f" + std::to_string(owned.size()), [](Item x) {
                  ++x.kind;
                  return x;
                }));
            p.connect(*prev, prev_port, *owned.back(), 0);
            prev = owned.back().get();
            prev_port = 0;
            ++added;
          }
          const bool branch =
              depth < 2 && std::uniform_int_distribution<int>(0, 2)(rng) == 0;
          if (branch) {
            const int fan = std::uniform_int_distribution<int>(2, 3)(rng);
            owned.push_back(std::make_unique<MulticastTee>(
                "tee" + std::to_string(owned.size()), fan));
            Component* tee = owned.back().get();
            p.connect(*prev, prev_port, *tee, 0);
            for (int b = 0; b < fan; ++b) grow(*tee, b, depth + 1, added);
          } else {
            owned.push_back(std::make_unique<CollectorSink>(
                "sink" + std::to_string(owned.size())));
            auto* sink = static_cast<CollectorSink*>(owned.back().get());
            p.connect(*prev, prev_port, *sink, 0);
            sinks.push_back(sink);
            adds.push_back(added);
          }
        };
    grow(pump, 0, 0, 0);

    SCOPED_TRACE("seed=" + std::to_string(seed));
    Realization real(rtm, p);
    EXPECT_EQ(real.thread_count(), 1u)
        << "a multicast tree of passive stages needs only the pump's thread";
    real.start();
    rtm.run();
    ASSERT_FALSE(sinks.empty());
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      ASSERT_EQ(sinks[i]->count(), kInputs) << "sink " << i;
      EXPECT_TRUE(sinks[i]->eos_seen()) << "sink " << i;
      // Every item went through exactly this path's stages, in order.
      EXPECT_EQ(sinks[i]->arrivals()[0].item.kind, adds[i]) << "sink " << i;
      std::vector<std::uint64_t> expect_seqs(kInputs);
      std::iota(expect_seqs.begin(), expect_seqs.end(), 0);
      EXPECT_EQ(sinks[i]->seqs(), expect_seqs) << "sink " << i;
    }
  }
}

TEST(PropertyPipelines, StopRestartPreservesStreamContents) {
  // Stopping and restarting a pipeline mid-flow must not lose or duplicate
  // items (buffered/blocked items continue after restart).
  for (int seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(test_seed(static_cast<unsigned>(seed) + 99));
    rt::Runtime rtm;
    CountingSource src("src", 200);
    ClockedPump fill("fill", 1000.0);
    Buffer buf("buf", 8);
    ClockedPump drain("drain", 800.0);
    CollectorSink sink("sink");
    auto ch = src >> fill >> buf >> drain >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    // Stop at a random instant mid-stream, then resume.
    const rt::Time stop_at = rt::milliseconds(
        std::uniform_int_distribution<int>(10, 120)(rng));
    rtm.run_until(stop_at);
    real.stop();
    rtm.run_until(stop_at + rt::milliseconds(50));
    const std::size_t frozen = sink.count();
    rtm.run_until(stop_at + rt::milliseconds(100));
    EXPECT_LE(sink.count(), frozen + 2) << "flow continued while stopped";
    real.start();
    rtm.run();
    ASSERT_EQ(sink.count(), 200u) << "seed " << seed;
    // In-order, exactly-once delivery.
    std::vector<std::uint64_t> expect(200);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(sink.seqs(), expect) << "seed " << seed;
  }
}

TEST(PropertyPipelines, EventsDuringRandomExecutionNeverReenter) {
  // Fire broadcasts at random times; the §3.2 invariant — no handler runs
  // while the same component is inside its data function — must hold for
  // every component style. The guard component asserts the invariant.
  class Guarded : public Consumer {
   public:
    explicit Guarded(std::string n) : Consumer(std::move(n)) {}
    bool in_data = false;
    int events = 0;

   protected:
    void push(Item x) override {
      ASSERT_FALSE(in_data);
      in_data = true;
      push_next(std::move(x));
      in_data = false;
    }
    void handle_event(const Event& e) override {
      ASSERT_FALSE(in_data) << "handler ran during data processing";
      if (e.type == kEventUser + 1) ++events;
    }
  };

  for (int seed = 0; seed < 10; ++seed) {
    std::mt19937 rng(test_seed(static_cast<unsigned>(seed) + 7));
    rt::Runtime rtm;
    CountingSource src("src", 300);
    ClockedPump pump("pump", 1000.0);
    Guarded g1("g1");
    DefragmenterActive defrag("defrag",
                              [](Item a, Item) { return a; });  // coroutine
    Guarded g2("g2");
    CollectorSink sink("sink");
    auto ch = src >> pump >> g1 >> defrag >> g2 >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rt::Time t = 0;
    for (int i = 0; i < 40; ++i) {
      t += rt::microseconds(std::uniform_int_distribution<int>(100, 9000)(rng));
      rtm.run_until(t);
      real.post_event(Event{kEventUser + 1});
    }
    rtm.run();
    EXPECT_EQ(sink.count(), 150u);
    EXPECT_EQ(g1.events, 40);
    EXPECT_EQ(g2.events, 40);
  }
}

}  // namespace
}  // namespace infopipe
