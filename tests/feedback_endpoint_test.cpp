// Location-transparent feedback endpoints across shard cuts.
//
// The acceptance scenario for the endpoint layer: a FeedbackLoop homed on
// the CONSUMER shard reads the cross-shard channel's congestion and steers
// an AdaptivePump on the PRODUCER shard, bound purely by name — the loop
// code never touches a component reference or a foreign runtime. The main
// test runs the whole two-shard group in manual/lockstep mode under virtual
// clocks, so convergence is deterministic and replayable; a second test
// closes the same loop over real kernel threads with loose tolerances.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/infopipes.hpp"
#include "feedback/endpoint.hpp"
#include "feedback/toolkit.hpp"
#include "shard/sharded_realization.hpp"

namespace infopipe::fb {
namespace {

using namespace std::chrono_literals;

/// AdaptivePump that counts the quality hints it receives, so a test can
/// prove actuations really arrived as control events on the pump's shard.
class CountingAdaptivePump : public AdaptivePump {
 public:
  using AdaptivePump::AdaptivePump;

  void handle_event(const Event& e) override {
    if (e.type == kEventQualityHint) ++hints_;
    AdaptivePump::handle_event(e);
  }

  [[nodiscard]] int hints() const noexcept { return hints_; }

 private:
  int hints_ = 0;
};

/// What one deterministic run of the congestion-steering scenario produced.
struct RunResult {
  double pump_rate = 0.0;
  double fill_frac = 0.0;
  double loop_error = 0.0;
  std::uint64_t delivered = 0;
  int hints = 0;
  int steps = 0;
};

/// Two manual shards under virtual clocks: src >> fill(300 Hz, adaptive) >>
/// [cut "buf", capacity 64] >> drain(100 Hz, fixed) >> sink. The loop lives
/// on the channel's consumer shard, holds the channel at half full, and
/// actuates the producer-side pump through its name. Lockstep is driven in
/// 100 ms slices so the shards interleave at feedback-relevant granularity.
RunResult run_congestion_scenario() {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  CountingSource src("src", 1000000);
  CountingAdaptivePump fill("fill", 300.0);  // starts 3x too fast
  Buffer buf("buf", 64, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 100.0);  // the plant's fixed service rate
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  EXPECT_NE(chan, nullptr);
  EXPECT_NE(chan->from_shard(), chan->to_shard());
  // The pump lives on the producer shard; the loop will home on the other.
  EXPECT_EQ(sr.find_component("fill").shard, chan->from_shard());

  // Positive gains: error = setpoint - fill, and RAISING the producer rate
  // raises the fill level.
  auto loop = make_loop(
      sr, LoopSpec{.name = "congestion",
                   .period = rt::milliseconds(50),
                   .sensor = fill_fraction("buf"),
                   .setpoint = 0.5,
                   .controller = PIController(/*kp=*/200.0, /*ki=*/400.0,
                                              /*out_min=*/1.0,
                                              /*out_max=*/2000.0),
                   .actuator = pump_rate("fill")});

  auto prod_stalls =
      resolve_reading(sr, producer_stall_rate("buf"), chan->to_shard());
  (void)prod_stalls();  // primes the rate window at t = 0

  // Phase 1, loop disengaged: 300 Hz into a 100 Hz drain fills the 64-slot
  // ring within a second, so the channel saturates and the producer blocks.
  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_GT(chan->depth(), chan->capacity() * 3 / 4);
  EXPECT_GT(prod_stalls(), 0.0);

  // Phase 2: the loop engages and steers the congested channel back to its
  // setpoint by throttling the far-shard producer.
  loop->start();
  for (rt::Time t = rt::seconds(2); t <= rt::seconds(40);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }

  RunResult r;
  r.pump_rate = fill.rate_hz();
  r.fill_frac = static_cast<double>(chan->depth()) /
                static_cast<double>(chan->capacity());
  r.loop_error = loop->last_error();
  r.hints = fill.hints();
  r.steps = loop->steps();

  // The loop's telemetry appears under its home (consumer) shard.
  const std::string p =
      "shard" + std::to_string(chan->to_shard()) + ".fb.loop.congestion.";
  const obs::MetricsSnapshot ms = sr.metrics_snapshot();
  const obs::MetricValue* out = ms.find(p + "output");
  EXPECT_NE(out, nullptr);
  if (out != nullptr) {
    EXPECT_NEAR(out->value, fill.rate_hz(), 1e-9);
  }
  const obs::MetricValue* acts = ms.find(p + "actuations");
  EXPECT_NE(acts, nullptr);
  if (acts != nullptr) {
    EXPECT_EQ(acts->count, static_cast<std::uint64_t>(r.steps));
  }
  EXPECT_NE(ms.find(p + "error"), nullptr);
  EXPECT_NE(ms.find(p + "steps"), nullptr);
  // Nothing leaked onto the producer shard's registry.
  const std::string foreign =
      "shard" + std::to_string(chan->from_shard()) + ".fb.loop.congestion.";
  EXPECT_EQ(ms.find(foreign + "output"), nullptr);

  loop->stop();
  sr.shutdown();
  group.step_until(rt::seconds(41));
  EXPECT_TRUE(sr.finished());
  r.delivered = sink.count();
  return r;
}

TEST(FeedbackEndpoint, CrossShardLoopConvergesToChannelSetpoint) {
  const RunResult r = run_congestion_scenario();
  // Converged: the producer ends matched to the 100 Hz drain, the channel
  // sits near half full, and the loop error is near zero.
  EXPECT_NEAR(r.pump_rate, 100.0, 15.0);
  EXPECT_NEAR(r.fill_frac, 0.5, 0.2);
  EXPECT_NEAR(r.loop_error, 0.0, 0.2);
  // ~40 s at a 50 ms period: the loop actually ran, and every one of its
  // actuations crossed the cut as a control event into the producer pump.
  EXPECT_GT(r.steps, 500);
  EXPECT_EQ(r.hints, r.steps);
  EXPECT_GT(r.delivered, 3000u);
}

TEST(FeedbackEndpoint, LockstepRunsAreBitIdentical) {
  // Same virtual-clock scenario twice in one process: manual mode plus the
  // endpoint layer must make the whole cross-shard loop a deterministic
  // function of the schedule, down to per-sample controller state.
  const RunResult a = run_congestion_scenario();
  const RunResult b = run_congestion_scenario();
  EXPECT_EQ(a.pump_rate, b.pump_rate);
  EXPECT_EQ(a.fill_frac, b.fill_frac);
  EXPECT_EQ(a.loop_error, b.loop_error);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hints, b.hints);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(FeedbackEndpoint, CrossShardResolutionErrors) {
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  CountingSource src("src", 100);
  AdaptivePump fill("fill", 100.0);
  Buffer buf("buf", 16);
  FreeRunningPump drain("drain");
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());

  EXPECT_THROW((void)resolve_reading(sr, fill_fraction("nope"), 0),
               CompositionError);
  EXPECT_THROW((void)resolve_actuate(sr, pump_rate("nope")), CompositionError);
  EXPECT_THROW((void)resolve_actuate(sr, pump_rate("drain")),
               CompositionError);  // not adaptive
  // The cut buffer is a channel now: depth and stall kinds resolve, a probe
  // does not (a channel has no sensor value of its own).
  EXPECT_NO_THROW((void)resolve_reading(sr, fill_fraction("buf"), 0));
  EXPECT_NO_THROW((void)resolve_reading(sr, consumer_stall_rate("buf"), 0));
  EXPECT_THROW((void)resolve_reading(sr, probe_value("buf"), 0),
               CompositionError);
  // A component endpoint resolves from anywhere, local or not.
  EXPECT_NO_THROW((void)resolve_reading(sr, probe_value("fill"), 0));
  EXPECT_NO_THROW((void)resolve_reading(sr, probe_value("fill"), 1));
}

TEST(FeedbackEndpoint, ForeignProbeIsCachedAndPushedAsSensorReports) {
  // A probe of a component on ANOTHER shard must not round-trip per sample:
  // resolution plants a PeriodicTask on the owner shard that caches the
  // value and broadcasts it as kEventSensorReport; the Reading is then just
  // a cache load.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  CountingSource src("src", 1000000);
  AdaptivePump fill("fill", 200.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  const int consumer = chan->to_shard();  // foreign to the pump

  std::atomic<int> reports{0};
  sr.set_event_listener([&reports](const Event& e) {
    if (e.type != kEventSensorReport) return;
    const auto* r = e.get<SensorReport>();
    if (r != nullptr && r->sensor == "fill") reports.fetch_add(1);
  });

  auto reading =
      resolve_reading(sr, probe_value("fill"), consumer, rt::milliseconds(50));
  EXPECT_EQ(reading(), 0.0);  // nothing cached before the flow steps

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  // ~2s at a 50ms probe period: the shard-side sampler pushed many reports,
  // and the cache holds the pump's actual rate.
  EXPECT_GT(reports.load(), 10);
  EXPECT_EQ(reading(), fill.rate_hz());

  sr.shutdown();
  group.step_until(rt::seconds(3));
  EXPECT_TRUE(sr.finished());
}

TEST(FeedbackEndpoint, ChannelSensorFollowsCutCollapseAndResplit) {
  // A channel sensor must not latch the channel OBJECT: when a migration
  // collapses the cut, the retired channel's stats freeze (depth drains to
  // zero) and a loop steering on them would steer on dead data. The sensor
  // re-resolves per read — live channel, then the underlying buffer, then
  // the fresh channel of a re-created cut.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  CountingSource src("src", 1000000);
  ClockedPump fill("fill", 300.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  const int prod = chan->from_shard();
  const int cons = chan->to_shard();
  std::size_t cons_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "drain") cons_sec = i;
  }
  ASSERT_LT(cons_sec, sr.section_count());

  auto fill_read = resolve_reading(sr, fill_fraction("buf"), cons);
  auto stall_read = resolve_reading(sr, producer_stall_rate("buf"), cons);
  (void)stall_read();  // primes the rate window at t = 0

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  // 300 Hz into a 100 Hz drain congests the cut; the sensor sees it.
  EXPECT_GT(fill_read(), 0.5);
  EXPECT_GT(stall_read(), 0.0);

  // Collapse: the consumer section joins the producer shard, the channel
  // retires and its queued items land back in the buffer. The sensor must
  // read the buffer now, not the retired channel's drained ring.
  (void)sr.migrate_section(cons_sec, prod);
  ASSERT_EQ(sr.find_live_channel("buf"), nullptr);
  EXPECT_GT(fill_read(), 0.3);
  // The rate window re-primes across the counter-source switch instead of
  // differencing unrelated counters into a nonsense spike.
  double r = stall_read();
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1e9);
  for (rt::Time t = rt::seconds(2); t <= rt::seconds(3);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_GT(fill_read(), 0.3);

  // Re-split: a FRESH channel object carries the cut; the sensor follows.
  (void)sr.migrate_section(cons_sec, cons);
  shard::ShardChannel* fresh = sr.find_live_channel("buf");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, chan);
  EXPECT_GT(fill_read(), 0.3);
  for (rt::Time t = rt::seconds(3); t <= rt::seconds(4);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_GT(fill_read(), 0.5);
  r = stall_read();
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1e9);

  sr.shutdown();
  group.step_until(rt::seconds(5));
  EXPECT_TRUE(sr.finished());
}

TEST(FeedbackEndpoint, RemoteProbeRehomesAfterMigration) {
  // The shard-side probe task must follow its component: after a migration
  // moves the probed pump, the old shard's task goes dormant and the next
  // Reading re-homes it, so the cache keeps refreshing without per-period
  // cross-shard round trips.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(2, std::move(opt));

  CountingSource src("src", 1000000);
  AdaptivePump fill("fill", 200.0);
  Buffer buf("buf", 64);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  const int consumer = chan->to_shard();
  std::size_t pump_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "fill") pump_sec = i;  // sections go by driver
  }
  ASSERT_LT(pump_sec, sr.section_count());
  ASSERT_TRUE(sr.section_migratable(pump_sec));

  std::atomic<int> reports{0};
  sr.set_event_listener([&reports](const Event& e) {
    if (e.type != kEventSensorReport) return;
    const auto* rep = e.get<SensorReport>();
    if (rep != nullptr && rep->sensor == "fill") reports.fetch_add(1);
  });

  auto reading =
      resolve_reading(sr, probe_value("fill"), consumer, rt::milliseconds(50));

  sr.start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(1);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_EQ(reading(), fill.rate_hz());
  const int before = reports.load();
  EXPECT_GT(before, 5);

  // Move the pump's section onto the consumer shard (the cut collapses).
  (void)sr.migrate_section(pump_sec, consumer);
  // One tick on the old owner notices the move and flags it; the next
  // read re-homes the task; subsequent ticks refresh the cache again.
  for (rt::Time t = rt::seconds(1); t <= rt::seconds(3);
       t += rt::milliseconds(100)) {
    group.step_until(t);
    (void)reading();
  }
  EXPECT_EQ(reading(), fill.rate_hz());
  EXPECT_GT(reports.load(), before + 5);

  sr.shutdown();
  group.step_until(rt::seconds(4));
  EXPECT_TRUE(sr.finished());
}

TEST(FeedbackEndpoint, LoopRehomesWhenConsumerSectionMigrates) {
  // A naturally-homed loop lives where congestion is observed: the sensor
  // channel's consumer shard. When the rebalancer migrates the consumer
  // section, the channel's to_shard moves — and the loop must move with it:
  // its periodic task retires on the old shard, a fresh one spawns on the
  // new consumer shard, the metric rows continue under the new prefix, and
  // steering never stops.
  shard::ShardGroup::GroupOptions opt;
  opt.clock_factory = [] { return std::make_unique<rt::VirtualClock>(); };
  opt.manual = true;
  shard::ShardGroup group(3, std::move(opt));

  CountingSource src("src", 1000000);
  CountingAdaptivePump fill("fill", 300.0);
  Buffer buf("buf", 64, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  const int old_home = chan->to_shard();
  std::size_t cons_sec = sr.section_count();
  for (std::size_t i = 0; i < sr.section_count(); ++i) {
    if (sr.section_name(i) == "drain") cons_sec = i;
  }
  ASSERT_LT(cons_sec, sr.section_count());
  ASSERT_TRUE(sr.section_migratable(cons_sec));
  int fresh = -1;  // a shard hosting neither side of the cut
  for (int s = 0; s < group.size(); ++s) {
    if (s != chan->from_shard() && s != old_home) fresh = s;
  }
  ASSERT_GE(fresh, 0);

  auto loop = make_loop(
      sr, LoopSpec{.name = "congestion",
                   .period = rt::milliseconds(50),
                   .sensor = fill_fraction("buf"),
                   .setpoint = 0.5,
                   .controller = PIController(200.0, 400.0, 1.0, 2000.0),
                   .actuator = pump_rate("fill")});

  sr.start();
  loop->start();
  for (rt::Time t = rt::milliseconds(100); t <= rt::seconds(2);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  EXPECT_EQ(loop->rehomes(), 0);
  const int steps_before = loop->steps();
  EXPECT_GT(steps_before, 10);

  // Migrate the consumer section: the cut persists, rebound to `fresh`.
  (void)sr.migrate_section(cons_sec, fresh);
  shard::ShardChannel* live = sr.find_live_channel("buf");
  ASSERT_NE(live, nullptr);
  ASSERT_EQ(live->to_shard(), fresh);

  for (rt::Time t = rt::seconds(2); t <= rt::seconds(6);
       t += rt::milliseconds(100)) {
    group.step_until(t);
  }
  // The loop noticed the epoch change, moved exactly once, and kept
  // stepping from its new home.
  EXPECT_EQ(loop->rehomes(), 1);
  EXPECT_GT(loop->steps(), steps_before + 10);
  EXPECT_EQ(fill.hints(), loop->steps());

  // Telemetry continues under the NEW home shard's registry.
  const obs::MetricsSnapshot ms = sr.metrics_snapshot();
  const obs::MetricValue* steps_row = ms.find(
      "shard" + std::to_string(fresh) + ".fb.loop.congestion.steps");
  ASSERT_NE(steps_row, nullptr);
  EXPECT_GT(steps_row->count, 10u);

  loop->stop();
  sr.shutdown();
  group.step_until(rt::seconds(7));
  EXPECT_TRUE(sr.finished());
}

TEST(FeedbackEndpoint, LaunchedGroupStillConvergesLoosely) {
  // The same loop over real kernel threads: no lockstep, real clocks, TSan
  // exercises the cross-shard sampling (channel atomics) and actuation
  // (post_event_to_external) paths. Tolerances are deliberately loose.
  shard::ShardGroup group(2);

  CountingSource src("src", 1000000);
  CountingAdaptivePump fill("fill", 300.0);
  Buffer buf("buf", 64, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 100.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;

  shard::ShardedRealization sr(group, ch.pipeline());
  auto loop = make_loop(
      sr, LoopSpec{.name = "congestion",
                   .period = rt::milliseconds(20),
                   .sensor = fill_fraction("buf"),
                   .setpoint = 0.5,
                   .controller = PIController(200.0, 400.0, 1.0, 2000.0),
                   .actuator = pump_rate("fill")});
  sr.start();
  loop->start();
  std::this_thread::sleep_for(2s);
  loop->stop();
  const int steps = loop->steps();
  EXPECT_GT(steps, 10);  // the loop ran on its shard
  sr.shutdown();
  ASSERT_TRUE(sr.wait_finished(30000ms));
  group.stop();  // joins host threads: direct reads below are race-free
  // The producer was throttled from 300 Hz toward the 100 Hz drain, every
  // actuation arrived at the far-shard pump, and the loop published itself.
  EXPECT_LT(fill.rate_hz(), 250.0);
  // A final actuation can still be in flight when the shutdown lands, so the
  // delivered count may trail the step count by the pipeline depth.
  EXPECT_GT(fill.hints(), 0);
  const obs::MetricsSnapshot ms = sr.metrics_snapshot();
  shard::ShardChannel* chan = sr.find_channel("buf");
  ASSERT_NE(chan, nullptr);
  EXPECT_NE(ms.find("shard" + std::to_string(chan->to_shard()) +
                    ".fb.loop.congestion.output"),
            nullptr);
}

}  // namespace
}  // namespace infopipe::fb
