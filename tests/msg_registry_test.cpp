// Compile-time partitioning checks over the message-type registry, plus a
// regression test for the newest band. The point of rt/msg_registry.hpp is
// that the bands cannot silently collide; this file is where that promise is
// enforced, so adding a constant outside its subsystem's band (or a band
// overlapping another) fails the build, not a 2 a.m. debugging session.
#include <gtest/gtest.h>

#include "rt/msg_registry.hpp"

namespace infopipe::rt::msg {
namespace {

// ---- band layout: ordered, non-overlapping, and gap-free to 599 ------------
static_assert(kCoreBandFirst <= kCoreBandLast);
static_assert(kCoreBandLast < kNetBandFirst, "core and net bands overlap");
static_assert(kNetBandLast < kFeedbackBandFirst,
              "net and feedback bands overlap");
static_assert(kFeedbackBandLast < kIoBandFirst,
              "feedback and io bands overlap");
static_assert(kIoBandLast < kShardBandFirst, "io and shard bands overlap");
static_assert(kShardBandLast < kReplayBandFirst,
              "shard and replay bands overlap");
static_assert(kReplayBandLast < kBalanceBandFirst,
              "replay and balance bands overlap");
static_assert(kBalanceBandFirst <= kBalanceBandLast);

// ---- every constant inside its owner's band --------------------------------
constexpr bool in_band(int v, int first, int last) {
  return v >= first && v <= last;
}

static_assert(in_band(kCoreControl, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreCoPull, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreCoItem, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreCoDone, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreBufNotify, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreTick, kCoreBandFirst, kCoreBandLast));
static_assert(in_band(kCoreLockGrant, kCoreBandFirst, kCoreBandLast));

static_assert(in_band(kNetDeliver, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetTypespecQuery, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetCreateComponent, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetArqSubmit, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetArqTimer, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetSocketRetry, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetControlReply, kNetBandFirst, kNetBandLast));
static_assert(in_band(kNetControlTimeout, kNetBandFirst, kNetBandLast));

static_assert(in_band(kFeedbackLoopTick, kFeedbackBandFirst, kFeedbackBandLast));

static_assert(in_band(kIoData, kIoBandFirst, kIoBandLast));
static_assert(in_band(kIoSignal, kIoBandFirst, kIoBandLast));
static_assert(in_band(kIoEof, kIoBandFirst, kIoBandLast));
static_assert(in_band(kIoReadable, kIoBandFirst, kIoBandLast));
static_assert(in_band(kIoWritable, kIoBandFirst, kIoBandLast));

static_assert(in_band(kChanData, kShardBandFirst, kShardBandLast));
static_assert(in_band(kChanSpace, kShardBandFirst, kShardBandLast));
static_assert(in_band(kRunFn, kShardBandFirst, kShardBandLast));

static_assert(in_band(kReplayStep, kReplayBandFirst, kReplayBandLast));
static_assert(in_band(kReplayMark, kReplayBandFirst, kReplayBandLast));

static_assert(in_band(kBalanceScaleUp, kBalanceBandFirst, kBalanceBandLast));
static_assert(in_band(kBalanceScaleDown, kBalanceBandFirst, kBalanceBandLast));
static_assert(in_band(kBalanceApplyPlan, kBalanceBandFirst, kBalanceBandLast));

// ---- uniqueness across the whole registry ----------------------------------
TEST(MsgRegistry, AllConstantsAreDistinct) {
  const int all[] = {
      kCoreControl,     kCoreCoPull,       kCoreCoItem,
      kCoreCoDone,      kCoreBufNotify,    kCoreTick,
      kCoreLockGrant,   kNetDeliver,       kNetTypespecQuery,
      kNetCreateComponent, kNetArqSubmit,  kNetArqTimer,
      kNetSocketRetry,  kNetControlReply,  kNetControlTimeout,
      kFeedbackLoopTick, kIoData,          kIoSignal,
      kIoEof,           kIoReadable,       kIoWritable,
      kChanData,        kChanSpace,        kRunFn,
      kReplayStep,      kReplayMark,       kBalanceScaleUp,
      kBalanceScaleDown, kBalanceApplyPlan,
  };
  const std::size_t n = sizeof(all) / sizeof(all[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_NE(all[i], all[j]) << "registry constants collide at " << all[i];
    }
  }
}

// Regression: the replay control band stays where the range plan put it.
// Moving these values would break every recorded trace in the wild whose
// dispatch frames carry the raw message type.
TEST(MsgRegistry, ReplayBandStaysAt500) {
  EXPECT_EQ(kReplayBandFirst, 500);
  EXPECT_EQ(kReplayBandLast, 599);
  EXPECT_EQ(kReplayStep, 500);
  EXPECT_EQ(kReplayMark, 501);
}

TEST(MsgRegistry, BalanceBandStaysAt600) {
  EXPECT_EQ(kBalanceBandFirst, 600);
  EXPECT_EQ(kBalanceBandLast, 699);
  EXPECT_EQ(kBalanceScaleUp, 600);
  EXPECT_EQ(kBalanceScaleDown, 601);
  EXPECT_EQ(kBalanceApplyPlan, 602);
}

}  // namespace
}  // namespace infopipe::rt::msg
