// Binding-protocol tests (§2.4/§6 distributed setup): cross-node Typespec
// negotiation including the link's QoS bound.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"
#include "net/binder.hpp"

namespace infopipe::net {
namespace {

class Cam : public CountingSource {
 public:
  Cam() : CountingSource("cam", 10) {}
  Typespec output_offer(int) const override {
    return Typespec{{props::kItemType, std::string("video")},
                    {props::kFormats, StringSet{"mpeg1", "mpeg4"}},
                    {props::kFrameRate, Range{5, 30}},
                    {props::kBandwidthKbps, Range{200, 4000}}};
  }
};

class Screen : public CollectorSink {
 public:
  Screen() : CollectorSink("screen") {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kItemType, std::string("video")},
                    {props::kFormats, StringSet{"mpeg4", "raw"}},
                    {props::kFrameRate, Range{24, 60}}};
  }
};

class PickyScreen : public CollectorSink {
 public:
  PickyScreen() : CollectorSink("picky") {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kFormats, StringSet{"theora"}}};
  }
};

struct TwoNodes {
  rt::Runtime rt;
  Node server{rt, "server"};
  Node client{rt, "client"};
  TwoNodes() {
    server.adopt(std::make_unique<Cam>());
    client.adopt(std::make_unique<Screen>());
    client.adopt(std::make_unique<PickyScreen>());
  }
};

TEST(Binder, NegotiatesTheCommonFlow) {
  TwoNodes n;
  BindingRequest req;
  req.producer_node = &n.server;
  req.producer = "cam";
  req.consumer_node = &n.client;
  req.consumer = "screen";
  const BindingResult r = negotiate(n.rt, req);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.agreed.get<StringSet>(props::kFormats), (StringSet{"mpeg4"}));
  EXPECT_EQ(r.agreed.get<Range>(props::kFrameRate), (Range{24, 30}));
}

TEST(Binder, ReportsFormatMismatchReadably) {
  TwoNodes n;
  BindingRequest req;
  req.producer_node = &n.server;
  req.producer = "cam";
  req.consumer_node = &n.client;
  req.consumer = "picky";
  const BindingResult r = negotiate(n.rt, req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("offers"), std::string::npos);
  EXPECT_NE(r.failure.find("requires"), std::string::npos);
  EXPECT_NE(r.failure.find("theora"), std::string::npos);
}

TEST(Binder, LinkBandwidthBoundsTheFlow) {
  TwoNodes n;
  LinkConfig slow;
  slow.bandwidth_bps = 1e6;  // 1000 kbps
  SimLink link(slow);
  BindingRequest req;
  req.producer_node = &n.server;
  req.producer = "cam";
  req.consumer_node = &n.client;
  req.consumer = "screen";
  req.link = &link;
  const BindingResult r = negotiate(n.rt, req);
  ASSERT_TRUE(r.ok) << r.failure;
  // Camera wants [200,4000] kbps; the link caps it at 1000.
  EXPECT_EQ(r.agreed.get<Range>(props::kBandwidthKbps), (Range{200, 1000}));
}

TEST(Binder, LinkTooSlowFailsNegotiation) {
  TwoNodes n;
  LinkConfig tiny;
  tiny.bandwidth_bps = 64e3;  // 64 kbps < the camera's 200 kbps floor
  SimLink link(tiny);
  BindingRequest req;
  req.producer_node = &n.server;
  req.producer = "cam";
  req.consumer_node = &n.client;
  req.consumer = "screen";
  req.link = &link;
  const BindingResult r = negotiate(n.rt, req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("link"), std::string::npos);
}

TEST(Binder, UnknownComponentThrowsRemoteError) {
  TwoNodes n;
  BindingRequest req;
  req.producer_node = &n.server;
  req.producer = "ghost-cam";
  req.consumer_node = &n.client;
  req.consumer = "screen";
  EXPECT_THROW((void)negotiate(n.rt, req), RemoteError);
}

TEST(Binder, InputRequirementQueryStandsAlone) {
  TwoNodes n;
  const Typespec need =
      remote_input_requirement(n.rt, n.client, "screen", 0);
  EXPECT_EQ(need.get<StringSet>(props::kFormats), (StringSet{"mpeg4", "raw"}));
}

}  // namespace
}  // namespace infopipe::net
