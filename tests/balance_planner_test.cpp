// TargetPlanner / PlanScheduler tests (ip_balance): whole-topology placement
// over measured load, and hot-spot-safe move ordering.
//
// Both classes are pure functions over plain data, so this suite drives them
// with synthetic topologies — the companion of shard_partition_test, which
// covers the construction-time partitioner the TargetPlanner mirrors. The
// two properties that matter are pinned here directly: plans are
// deterministic and equivariant under shard relabeling (tie-breaks by
// position, never by absolute id), and the scheduler NEVER emits a move
// whose destination's projected load breaches the hot-spot watermark — a
// property test over seeded random instances, replayed move by move.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "balance/planner.hpp"

namespace infopipe::balance {
namespace {

std::vector<SectionDesc> sections_of(
    const std::vector<std::pair<int, int>>& threads_home) {
  std::vector<SectionDesc> out;
  for (std::size_t i = 0; i < threads_home.size(); ++i) {
    SectionDesc s;
    s.id = i;
    s.threads = threads_home[i].first;
    s.home = threads_home[i].second;
    out.push_back(s);
  }
  return out;
}

// ---- TargetPlanner ---------------------------------------------------------

TEST(TargetPlanner, UnmeasuredLoadFallsBackToThreadCounts) {
  // Nothing measured: weights are the planned thread counts, reproducing
  // the construction partitioner's LPT. {3,1,1,1} over two shards -> 3 | 1+1+1.
  const auto secs = sections_of({{3, 0}, {1, 0}, {1, 0}, {1, 0}});
  const TargetPlanner planner;
  const TargetPlan plan = planner.plan(secs, {0, 1}, {0.0, 0.0});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.assignment, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(plan.makespan, 3.0);
  EXPECT_EQ(plan.moves.size(), 3u);  // the three light sections leave home
  for (const PlannedMove& m : plan.moves) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.to, 1);
  }
}

TEST(TargetPlanner, MeasuredLoadSplitsByResidentThreadShares) {
  // Shard 0 measured at 0.9 hosts sections 0 (two threads) and 2 (one):
  // weights 0.6 / 0.3. Shard 1 at 0.1 hosts section 1: weight 0.1.
  const auto secs = sections_of({{2, 0}, {1, 1}, {1, 0}});
  const TargetPlanner planner;
  const TargetPlan plan = planner.plan(secs, {0, 1}, {0.9, 0.1});
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.current_makespan, 0.9);
  // One move — section 2's 0.3 joins shard 1 — lands 0.6 | 0.4.
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].section, 2u);
  EXPECT_EQ(plan.moves[0].from, 0);
  EXPECT_EQ(plan.moves[0].to, 1);
  EXPECT_NEAR(plan.moves[0].load, 0.3, 1e-12);
  EXPECT_NEAR(plan.makespan, 0.6, 1e-12);
}

TEST(TargetPlanner, BalancedPlacementYieldsNoMoves) {
  // The sticky pass returns every displaced section home when home stays
  // within the LPT makespan: an already-balanced flow is never reshuffled.
  const auto secs = sections_of({{1, 0}, {1, 1}});
  const TargetPlanner planner;
  const TargetPlan plan = planner.plan(secs, {0, 1}, {0.5, 0.5});
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.assignment, (std::vector<int>{0, 1}));
}

TEST(TargetPlanner, DeterministicAcrossCalls) {
  const auto secs =
      sections_of({{1, 0}, {2, 1}, {1, 2}, {3, 0}, {1, 1}, {2, 2}});
  const std::vector<double> busy{0.7, 0.4, 0.2};
  const TargetPlanner planner;
  const TargetPlan a = planner.plan(secs, {0, 1, 2}, busy);
  const TargetPlan b = planner.plan(secs, {0, 1, 2}, busy);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.moves.size(), b.moves.size());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(TargetPlanner, EquivariantUnderShardRelabeling) {
  // Relabel the shards by a permutation pi (homes, busy vector and
  // candidate order all relabeled consistently): the plan must be the
  // pi-relabel of the original — LPT ties break by candidate POSITION, so
  // absolute ids never leak into the outcome.
  const auto secs =
      sections_of({{1, 0}, {2, 1}, {1, 2}, {3, 0}, {1, 1}, {2, 2}});
  const std::vector<int> shards{0, 1, 2};
  const std::vector<double> busy{0.7, 0.4, 0.2};

  // pi: 0 -> 5, 1 -> 3, 2 -> 9 (sparse ids on purpose — busy is indexed by
  // absolute shard id, candidates are an arbitrary id set).
  const auto pi = [](int s) { return s == 0 ? 5 : s == 1 ? 3 : 9; };
  auto relabeled = secs;
  for (SectionDesc& s : relabeled) s.home = pi(s.home);
  const std::vector<int> shards_p{5, 3, 9};  // same positions as {0,1,2}
  std::vector<double> busy_p(10, 0.0);
  for (int s = 0; s < 3; ++s) busy_p[static_cast<std::size_t>(pi(s))] = busy[static_cast<std::size_t>(s)];

  const TargetPlanner planner;
  const TargetPlan base = planner.plan(secs, shards, busy);
  const TargetPlan perm = planner.plan(relabeled, shards_p, busy_p);

  ASSERT_EQ(base.assignment.size(), perm.assignment.size());
  for (std::size_t i = 0; i < base.assignment.size(); ++i) {
    EXPECT_EQ(perm.assignment[i], pi(base.assignment[i])) << "section " << i;
  }
  EXPECT_DOUBLE_EQ(base.makespan, perm.makespan);
  ASSERT_EQ(base.moves.size(), perm.moves.size());
  for (std::size_t i = 0; i < base.moves.size(); ++i) {
    EXPECT_EQ(perm.moves[i].section, base.moves[i].section);
    EXPECT_EQ(perm.moves[i].from, pi(base.moves[i].from));
    EXPECT_EQ(perm.moves[i].to, pi(base.moves[i].to));
  }
}

TEST(TargetPlanner, PinnedSectionsPreloadTheirHomes) {
  // A pinned heavy section stays put; the mobile sections pack around it.
  auto secs = sections_of({{2, 0}, {1, 0}, {1, 0}});
  secs[0].migratable = false;
  const TargetPlanner planner;
  const TargetPlan plan = planner.plan(secs, {0, 1}, {0.8, 0.0});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.assignment[0], 0);
  // Both light sections leave the saturated home.
  EXPECT_EQ(plan.assignment[1], 1);
  EXPECT_EQ(plan.assignment[2], 1);
}

TEST(TargetPlanner, PinnedStrayOutsideCandidatesIsInfeasible) {
  // A non-migratable section homed on a shard missing from the candidate
  // set (e.g. the shard is retiring): the plan leaves it and says so.
  auto secs = sections_of({{1, 5}, {1, 0}});
  secs[0].migratable = false;
  const TargetPlanner planner;
  const TargetPlan plan = planner.plan(secs, {0, 1}, {});
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.assignment[0], 5);  // left in place
}

// ---- PlanScheduler ---------------------------------------------------------

TEST(PlanScheduler, DrainsADestinationBeforeFillingIt) {
  // Shard 1 is both a destination (of m0) and a source (of m1): filling it
  // first would spike it past the watermark. The safe order runs m1 first.
  std::vector<PlannedMove> moves;
  moves.push_back(PlannedMove{0, 0, 1, 0.3});  // 0 -> 1, would hit 1.1
  moves.push_back(PlannedMove{1, 1, 2, 0.4});  // 1 -> 2, drains shard 1
  const PlanScheduler sched;
  const ScheduledPlan plan = sched.schedule(moves, {0.9, 0.8, 0.2});
  ASSERT_TRUE(plan.complete);
  ASSERT_EQ(plan.ordered.size(), 2u);
  EXPECT_EQ(plan.ordered[0].section, 1u);
  EXPECT_EQ(plan.ordered[1].section, 0u);
  ASSERT_EQ(plan.batches.size(), 2u);  // not disjoint: two batches
}

TEST(PlanScheduler, BatchesDisjointMovesTogether) {
  std::vector<PlannedMove> moves;
  moves.push_back(PlannedMove{0, 0, 1, 0.2});
  moves.push_back(PlannedMove{1, 2, 3, 0.2});  // disjoint shard set
  const PlanScheduler sched;
  const ScheduledPlan plan = sched.schedule(moves, {0.6, 0.1, 0.6, 0.1});
  ASSERT_TRUE(plan.complete);
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_EQ(plan.batches[0].size(), 2u);
}

TEST(PlanScheduler, RefusesToForceAViolatingMove) {
  // Every destination sits above the watermark: nothing is schedulable and
  // the plan says so instead of emitting a hot-spot transit.
  std::vector<PlannedMove> moves;
  moves.push_back(PlannedMove{0, 0, 1, 0.2});
  const PlanScheduler sched;
  const ScheduledPlan plan = sched.schedule(moves, {0.9, 0.94});
  EXPECT_FALSE(plan.complete);
  EXPECT_TRUE(plan.ordered.empty());
}

/// Deterministic LCG so the property instances are reproducible.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 33;
  }
  double uniform() {
    return static_cast<double>(next() % 10000) / 10000.0;
  }
  int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }

 private:
  std::uint64_t s_;
};

TEST(PlanScheduler, NeverBreachesTheWatermarkOnRandomInstances) {
  const PlanSchedulerOptions opts;  // watermark 0.95
  const PlanScheduler sched(opts);

  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Lcg rng(seed + 1);
    const int n_shards = 2 + rng.pick(6);
    std::vector<double> busy;
    for (int s = 0; s < n_shards; ++s) busy.push_back(rng.uniform() * 0.9);

    const int n_moves = 1 + rng.pick(10);
    std::vector<PlannedMove> moves;
    for (int i = 0; i < n_moves; ++i) {
      PlannedMove m;
      m.section = static_cast<std::size_t>(i);
      m.from = rng.pick(n_shards);
      do {
        m.to = rng.pick(n_shards);
      } while (m.to == m.from);
      m.load = rng.uniform() * 0.4;
      moves.push_back(m);
    }

    const ScheduledPlan plan = sched.schedule(moves, busy);

    // Replay the schedule move by move against projected loads: no move
    // may lift its destination past the watermark at the instant it runs.
    std::vector<double> proj = busy;
    for (const PlannedMove& m : plan.ordered) {
      const auto to = static_cast<std::size_t>(m.to);
      const auto from = static_cast<std::size_t>(m.from);
      EXPECT_LE(proj[to] + m.load, opts.hotspot_watermark + 1e-9)
          << "seed " << seed << " section " << m.section;
      proj[from] -= m.load;
      proj[to] += m.load;
    }

    // Batches contain pairwise-disjoint {from, to} shard sets.
    std::size_t flattened = 0;
    for (const std::vector<PlannedMove>& batch : plan.batches) {
      std::set<int> used;
      for (const PlannedMove& m : batch) {
        EXPECT_TRUE(used.insert(m.from).second) << "seed " << seed;
        EXPECT_TRUE(used.insert(m.to).second) << "seed " << seed;
      }
      flattened += batch.size();
    }
    EXPECT_EQ(flattened, plan.ordered.size());

    // complete <=> every input move was scheduled.
    EXPECT_EQ(plan.complete, plan.ordered.size() == moves.size())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace infopipe::balance
