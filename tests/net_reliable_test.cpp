// ReliableTransport tests: lossless in-order delivery over lossy links, the
// latency price of retransmission, and the full-pipeline contrast between
// the two protocols a netpipe can encapsulate (§2.4).
#include <gtest/gtest.h>

#include <vector>

#include "core/infopipes.hpp"
#include "media/mpeg.hpp"
#include "net/netpipe.hpp"
#include "net/reliable.hpp"

namespace infopipe::net {
namespace {

LinkConfig lossy(double loss, std::uint64_t seed = 3) {
  LinkConfig lc;
  lc.bandwidth_bps = 10e6;
  lc.base_latency = rt::milliseconds(10);
  lc.random_loss = loss;
  lc.seed = seed;
  return lc;
}

LinkConfig clean_ack_link() {
  LinkConfig lc;
  lc.bandwidth_bps = 10e6;
  lc.base_latency = rt::milliseconds(10);
  return lc;
}

struct RawConsumer {
  rt::Runtime* rt;
  std::vector<std::pair<std::uint64_t, rt::Time>> got;
  bool eos = false;
  rt::ThreadId tid;

  explicit RawConsumer(rt::Runtime& r) : rt(&r) {
    tid = r.spawn("consumer", rt::kPriorityData,
                  [this](rt::Runtime& rr, rt::Message m) -> rt::CodeResult {
                    if (m.type == kMsgNetDeliver) {
                      Item x = m.take<Item>();
                      if (x.is_eos()) {
                        eos = true;
                      } else {
                        got.emplace_back(x.seq, rr.now());
                      }
                    }
                    return rt::CodeResult::kContinue;
                  });
  }
};

TEST(Reliable, DeliversEverythingInOrderDespiteHeavyLoss) {
  rt::Runtime rtm;
  SimLink fwd(lossy(0.3));
  SimLink rev(clean_ack_link());
  ReliableTransport arq(rtm, fwd, rev, rt::milliseconds(50));
  RawConsumer consumer(rtm);
  arq.attach_receiver(consumer.tid);

  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    Item x = Item::token();
    x.seq = static_cast<std::uint64_t>(i);
    x.size_bytes = 500;
    arq.send(rtm, std::move(x));
  }
  arq.send(rtm, Item::eos());
  rtm.run();

  ASSERT_EQ(consumer.got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(consumer.got[static_cast<std::size_t>(i)].first,
              static_cast<std::uint64_t>(i))
        << "out of order at " << i;
  }
  EXPECT_TRUE(consumer.eos);
  EXPECT_GT(arq.stats().retransmissions, 20u) << "30% loss must retransmit";
  EXPECT_EQ(arq.stats().delivered, static_cast<std::uint64_t>(kN) + 1);
}

TEST(Reliable, LosslessLinkHasNoRetransmissions) {
  rt::Runtime rtm;
  SimLink fwd(lossy(0.0));
  SimLink rev(clean_ack_link());
  ReliableTransport arq(rtm, fwd, rev, rt::milliseconds(50));
  RawConsumer consumer(rtm);
  arq.attach_receiver(consumer.tid);
  for (int i = 0; i < 50; ++i) {
    Item x = Item::token();
    x.seq = static_cast<std::uint64_t>(i);
    x.size_bytes = 100;
    arq.send(rtm, std::move(x));
  }
  arq.send(rtm, Item::eos());
  rtm.run();
  EXPECT_EQ(consumer.got.size(), 50u);
  EXPECT_EQ(arq.stats().retransmissions, 0u);
  EXPECT_EQ(arq.stats().duplicates, 0u);
}

TEST(Reliable, RetransmissionCostsLatency) {
  // With loss, some packets arrive only after >= one RTO; without loss the
  // worst-case one-way delay stays near the base latency.
  auto max_delay = [](double loss) {
    rt::Runtime rtm;
    SimLink fwd(lossy(loss, /*seed=*/7));
    SimLink rev(clean_ack_link());
    ReliableTransport arq(rtm, fwd, rev, rt::milliseconds(60));
    RawConsumer consumer(rtm);
    arq.attach_receiver(consumer.tid);
    std::vector<rt::Time> sent_at;
    for (int i = 0; i < 100; ++i) {
      Item x = Item::token();
      x.seq = static_cast<std::uint64_t>(i);
      x.size_bytes = 100;
      sent_at.push_back(rtm.now());
      arq.send(rtm, std::move(x));
    }
    arq.send(rtm, Item::eos());
    rtm.run();
    rt::Time worst = 0;
    for (const auto& [seq, at] : consumer.got) {
      worst = std::max(worst, at - sent_at[seq]);
    }
    return worst;
  };
  const rt::Time clean = max_delay(0.0);
  const rt::Time lossy_worst = max_delay(0.25);
  EXPECT_LT(clean, rt::milliseconds(30));
  EXPECT_GE(lossy_worst, rt::milliseconds(60))
      << "a retransmitted packet pays at least one RTO";
}

TEST(Reliable, VideoPipelineOverReliableVsBestEffort) {
  // The §2.4 trade-off end to end: same lossy network, two protocols.
  auto run_video = [](bool reliable, std::uint64_t& delivered,
                      std::uint64_t& corrupt) {
    rt::Runtime rtm;
    media::StreamConfig cfg;
    cfg.frames = 300;
    media::MpegFileSource src("m.mpg", cfg);
    ClockedPump pump("pump", 30.0);
    MarshalFilter marshal("marshal", media::encode_frame, "video");
    SimLink fwd(lossy(0.15, 11));
    SimLink rev(clean_ack_link());
    ReliableTransport arq(rtm, fwd, rev, rt::milliseconds(60));
    Transport& transport =
        reliable ? static_cast<Transport&>(arq) : static_cast<Transport&>(fwd);
    NetSender tx("tx", transport, "a");
    NetReceiver rx("rx", transport, "b");
    UnmarshalFilter unmarshal("unmarshal", media::decode_frame, "video");
    media::MpegDecoder dec("dec");
    media::VideoDisplay display("display", 30.0);
    Pipeline p;
    p.connect(src, 0, pump, 0);
    p.connect(pump, 0, marshal, 0);
    p.connect(marshal, 0, tx, 0);
    p.connect(rx, 0, unmarshal, 0);
    p.connect(unmarshal, 0, dec, 0);
    p.connect(dec, 0, display, 0);
    Realization real(rtm, p);
    real.start();
    rtm.run();
    delivered = display.stats().displayed;
    corrupt = display.stats().corrupt;
  };

  std::uint64_t rel_n = 0, rel_bad = 0, be_n = 0, be_bad = 0;
  run_video(true, rel_n, rel_bad);
  run_video(false, be_n, be_bad);

  EXPECT_EQ(rel_n, 300u) << "reliable transport must deliver every frame";
  EXPECT_EQ(rel_bad, 0u);
  EXPECT_LT(be_n, 290u) << "best effort loses frames at 15% loss";
  EXPECT_GT(be_bad, 10u) << "lost references corrupt dependents";
}

}  // namespace
}  // namespace infopipe::net
