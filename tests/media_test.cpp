// Media substrate tests: the synthetic MPEG stream, decoder reference
// tracking, frame-type-aware dropping, resizer control, display statistics,
// the wire codec, and MIDI components.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"
#include "media/midi.hpp"
#include "media/mpeg.hpp"
#include "media/paper_api.hpp"

namespace infopipe::media {
namespace {

StreamConfig small_stream(std::uint64_t frames = 24) {
  StreamConfig c;
  c.frames = frames;
  c.fps = 30.0;
  c.gop = "IBBPBBPBB";
  return c;
}

TEST(MpegFileSource, FollowsGopPatternAndSizes) {
  rt::Runtime rtm;
  MpegFileSource src("test.mpg", small_stream(18));
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 18u);
  const std::string gop = "IBBPBBPBB";
  for (std::size_t i = 0; i < 18; ++i) {
    const VideoFrame& f = sink.arrivals()[i].item.as<VideoFrame>();
    EXPECT_EQ(to_char(f.type), gop[i % gop.size()]) << "frame " << i;
    EXPECT_EQ(f.frame_no, i);
    // Size within the configured jitter band around the nominal size.
    const std::size_t nominal = f.type == FrameType::kI   ? 12000u
                                : f.type == FrameType::kP ? 4000u
                                                          : 1500u;
    EXPECT_GE(f.compressed_bytes, nominal * 8 / 10);
    EXPECT_LE(f.compressed_bytes, nominal * 12 / 10);
    EXPECT_EQ(sink.arrivals()[i].item.kind, kind_of(f.type));
  }
  EXPECT_TRUE(sink.eos_seen());
}

TEST(MpegFileSource, DeterministicForSameNameAndSeed) {
  auto sizes = [](const std::string& name) {
    rt::Runtime rtm;
    MpegFileSource src(name, small_stream(12));
    FreeRunningPump pump("pump");
    CollectorSink sink("sink");
    auto ch = src >> pump >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    std::vector<std::size_t> v;
    for (const auto& a : sink.arrivals()) {
      v.push_back(a.item.as<VideoFrame>().compressed_bytes);
    }
    return v;
  };
  EXPECT_EQ(sizes("a.mpg"), sizes("a.mpg"));
  EXPECT_NE(sizes("a.mpg"), sizes("b.mpg"));
}

TEST(MpegDecoder, DecodesCleanStreamWithoutCorruption) {
  rt::Runtime rtm;
  MpegFileSource src("test.mpg", small_stream(27));
  MpegDecoder dec("dec");
  FreeRunningPump pump("pump");
  VideoDisplay display("display");
  auto ch = src >> dec >> pump >> display;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(dec.stats().decoded, 27u);
  EXPECT_EQ(dec.stats().corrupt, 0u);
  EXPECT_EQ(display.stats().displayed, 27u);
  EXPECT_EQ(display.stats().corrupt, 0u);
  // The display released every reference frame (§2.2 protocol).
  EXPECT_EQ(dec.held_references(), 0u);
}

TEST(MpegDecoder, MarksDependentsOfDroppedReferencesCorrupt) {
  rt::Runtime rtm;
  StreamConfig cfg = small_stream(18);
  MpegFileSource src("test.mpg", cfg);
  // Drop every I frame before the decoder: whole GOPs become undecodable.
  LambdaConsumer dropper("drop-i", [](Item x, const auto& emit) {
    if (x.kind != kKindI) emit(std::move(x));
  });
  MpegDecoder dec("dec");
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> dropper >> dec >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(dec.stats().decoded, 16u);  // 18 minus 2 I frames
  EXPECT_EQ(dec.stats().corrupt, 16u) << "P/B without I must be corrupt";
}

TEST(MpegDecoder, TypespecTransformsMpegToRaw) {
  MpegFileSource src("test.mpg", small_stream());
  MpegDecoder dec("dec");
  FreeRunningPump pump("pump");
  VideoDisplay display("display");
  auto ch = src >> dec >> pump >> display;
  Plan p = plan(ch.pipeline());
  const Edge* e = ch.pipeline().edge_into(display, 0);
  EXPECT_EQ(p.edge_spec.at(e).get<StringSet>(props::kFormats),
            (StringSet{"raw"}));
}

TEST(FrameDrop, LevelsDropByType) {
  for (int level = 0; level <= 3; ++level) {
    rt::Runtime rtm;
    MpegFileSource src("test.mpg", small_stream(27));  // 3 GOPs of IBBPBBPBB
    FrameDropFilter filter("filter");
    filter.set_level(level);
    FreeRunningPump pump("pump");
    CollectorSink sink("sink");
    auto ch = src >> pump >> filter >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    // Per 9-frame GOP: 1 I, 2 P, 6 B.
    const std::size_t expected[] = {27u, 9u, 3u, 0u};
    EXPECT_EQ(sink.count(), expected[level]) << "level " << level;
    if (level >= 1) EXPECT_EQ(filter.stats().dropped[kKindB], 18u);
    if (level >= 2) EXPECT_EQ(filter.stats().dropped[kKindP], 6u);
  }
}

TEST(FrameDrop, QualityHintMapsToLevel) {
  FrameDropFilter f("f");
  f.handle_event(Event{kEventQualityHint, 1.0});
  EXPECT_EQ(f.level(), 0);
  f.handle_event(Event{kEventQualityHint, 0.0});
  EXPECT_EQ(f.level(), 3);
  f.handle_event(Event{kEventQualityHint, 0.7});
  EXPECT_EQ(f.level(), 1);
  f.handle_event(Event{kEventDropLevel, 2});
  EXPECT_EQ(f.level(), 2);
}

TEST(Resizer, FollowsWindowResizeFromDisplay) {
  rt::Runtime rtm;
  MpegFileSource src("test.mpg", small_stream(20));
  MpegDecoder dec("dec");
  ClockedPump pump("pump", 100.0);
  // The resizer sits directly upstream of the display — the §2.2 example:
  // "a video resizing component needs to be informed by the video display
  // whenever the user changes the window size" via LOCAL control.
  Resizer resize("resize", 320, 240);
  class ResizableDisplay : public VideoDisplay {
   public:
    using VideoDisplay::VideoDisplay;
    std::vector<int> widths;

   protected:
    void consume(Item x) override {
      widths.push_back(x.as<VideoFrame>().width);
      VideoDisplay::consume(std::move(x));
    }
  };
  ResizableDisplay display("display");
  auto ch = src >> dec >> pump >> resize >> display;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(55));  // ~6 frames at the original size
  display.user_resize(640, 480);
  rtm.run();
  EXPECT_EQ(resize.width(), 640);
  ASSERT_EQ(display.widths.size(), 20u);
  EXPECT_EQ(display.widths.front(), 320);
  EXPECT_EQ(display.widths.back(), 640);
}

TEST(VideoDisplay, JitterStatisticsReflectPacing) {
  rt::Runtime rtm;
  MpegFileSource src("test.mpg", small_stream(30));
  ClockedPump pump("pump", 30.0);
  VideoDisplay display("display", 30.0);
  auto ch = src >> pump >> display;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  const auto s = display.stats();
  EXPECT_EQ(s.displayed, 30u);
  EXPECT_NEAR(s.mean_abs_jitter_ms, 0.0, 0.01)
      << "a clocked pump under the virtual clock is jitter-free";
  EXPECT_EQ(s.per_type[kKindI] + s.per_type[kKindP] + s.per_type[kKindB],
            30u);
}

TEST(WireCodec, FrameSurvivesRoundTrip) {
  VideoFrame f;
  f.frame_no = 123;
  f.type = FrameType::kP;
  f.width = 352;
  f.height = 288;
  f.pts = rt::milliseconds(4100);
  f.compressed_bytes = 4321;
  f.content_id = 0xDEADBEEF;
  Item x = Item::of<VideoFrame>(f);
  x.kind = kind_of(f.type);

  const auto bytes = encode_frame(x);
  EXPECT_EQ(bytes.size(), 4321u) << "wire size must match the coded size";
  Item y = decode_frame(bytes);
  ASSERT_TRUE(y.is_data());
  const VideoFrame& g = y.as<VideoFrame>();
  EXPECT_EQ(g.frame_no, 123u);
  EXPECT_EQ(g.type, FrameType::kP);
  EXPECT_EQ(g.width, 352);
  EXPECT_EQ(g.height, 288);
  EXPECT_EQ(g.pts, rt::milliseconds(4100));
  EXPECT_EQ(g.compressed_bytes, 4321u);
  EXPECT_EQ(g.content_id, 0xDEADBEEF);
}

TEST(WireCodec, RejectsGarbage) {
  EXPECT_TRUE(decode_frame({}).is_nil());
  EXPECT_TRUE(decode_frame(std::vector<std::uint8_t>(100, 7)).is_nil());
}

// The paper's send_event(real, START) is spelled real.control(START): one
// documented lifecycle entry point, no forwarder shim.
TEST(PaperApi, QuickstartSnippetCompilesAndRuns) {
  rt::Runtime rtm;
  StreamConfig cfg;
  cfg.frames = 60;
  mpeg_file source("test.mpg", cfg);
  mpeg_decoder decode;
  clocked_pump pump(30);  // 30 Hz
  video_display sink;
  auto chain = source >> decode >> pump >> sink;
  Realization real(rtm, chain.pipeline());
  real.control(START);
  rtm.run();
  EXPECT_EQ(sink.stats().displayed, 60u);
  EXPECT_TRUE(sink.eos());
}

TEST(Vcr, SeekJumpsToGopBoundaryAndDecodesClean) {
  rt::Runtime rtm;
  StreamConfig cfg = small_stream(90);  // 10 GOPs of IBBPBBPBB
  MpegFileSource src("movie.mpg", cfg);
  MpegDecoder dec("dec");
  ClockedPump pump("pump", 100.0);
  VideoDisplay display("display", 100.0);
  auto ch = src >> dec >> pump >> display;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(105));  // ~11 frames played
  // User seeks to frame 50 -> snaps to the GOP start at frame 45 (an I).
  real.post_event_to(src, Event{kEventSeek, std::uint64_t{50}});
  rtm.run();
  const auto s = display.stats();
  // ~11 frames before the seek + 45 after (45..89).
  EXPECT_GE(s.displayed, 55u);
  EXPECT_LE(s.displayed, 57u);
  EXPECT_EQ(s.corrupt, 0u)
      << "seek landed mid-GOP: frames decoded without a reference";
  EXPECT_TRUE(display.eos());
}

TEST(Vcr, SeekBackwardsReplays) {
  rt::Runtime rtm;
  StreamConfig cfg = small_stream(18);  // 2 GOPs
  MpegFileSource src("movie.mpg", cfg);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> pump >> sink;
  {
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    ASSERT_EQ(sink.count(), 18u);
    real.shutdown();
    rtm.run();
  }
  // Rewind to the start and play again with a fresh realization.
  src.handle_event(Event{kEventSeek, std::uint64_t{0}});
  sink.clear();
  Realization real2(rtm, ch.pipeline());
  real2.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 18u);
  EXPECT_EQ(sink.arrivals()[0].item.seq, 0u);
}

// ---------- MIDI --------------------------------------------------------------------

TEST(Midi, MixerMergesChannelsInArrivalOrder) {
  rt::Runtime rtm;
  MidiSource ch0("ch0", 50, 0, 60);
  MidiSource ch1("ch1", 50, 1, 48);
  ClockedPump p0("p0", 1000.0);
  ClockedPump p1("p1", 1000.0);
  MidiMixer mix("mix", 2);
  CollectorSink sink("sink");
  Pipeline p;
  p.connect(ch0, 0, p0, 0);
  p.connect(ch1, 0, p1, 0);
  p.connect(p0, 0, mix, 0);
  p.connect(p1, 0, mix, 1);
  p.connect(mix, 0, sink, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 100u);
  EXPECT_TRUE(sink.eos_seen());
  std::size_t from0 = 0;
  for (const auto& a : sink.arrivals()) {
    if (a.item.kind == 0) ++from0;
  }
  EXPECT_EQ(from0, 50u);
}

TEST(Midi, TransposeShiftsNotes) {
  rt::Runtime rtm;
  MidiSource src("src", 12, 0, 60);
  MidiTranspose up("up", 5);
  FreeRunningPump pump("pump");
  CollectorSink sink("sink");
  auto ch = src >> up >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  ASSERT_EQ(sink.count(), 12u);
  EXPECT_EQ(sink.arrivals()[0].item.as<MidiEvent>().note, 65);
}

TEST(Midi, GainGatesSilentNotes) {
  rt::Runtime rtm;
  MidiSource src("src", 20, 0);
  MidiGain gain("gain", 0.0);  // gates everything
  FreeRunningPump pump("pump");
  CountingSink sink("sink");
  auto ch = src >> pump >> gain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_TRUE(sink.eos_seen());
}

}  // namespace
}  // namespace infopipe::media
