// ip_netreal tests: the frame format under round-trip and hostile input,
// and real loopback-TCP/UDP transports driven through the IoBridge —
// delivery, retry+backoff, peer-death EOS synthesis, the socket control
// link (remote factories and Typespec queries between "processes"), and a
// full netpipe pipeline whose link is a real socket.
//
// All socket tests run both transport ends on ONE runtime (two agents, two
// real sockets over 127.0.0.1) — the kernel does not care that both fds
// live in the same process, and a single scheduler keeps the tests
// deterministic to drive. The true multi-process path is exercised by
// examples/distributed_player (fork+exec) in scripts/check.sh.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/infopipes.hpp"
#include "net/binder.hpp"
#include "net/netpipe.hpp"
#include "net/remote_node.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "rt/io_bridge.hpp"

namespace infopipe::net {
namespace {

Item bytes_item(const std::string& s, std::uint64_t seq, std::int32_t kind) {
  Item x = Item::of_bytes(s.data(), s.size());
  x.seq = seq;
  x.kind = kind;
  return x;
}

std::string item_text(const Item& x) {
  return std::string(reinterpret_cast<const char*>(x.bytes_data()),
                     x.bytes_size());
}

// ---------- wire format -----------------------------------------------------------

TEST(Wire, RoundTripsFramesAcrossOneByteFeeds) {
  std::vector<std::uint8_t> buf;
  wire::append_data_frame(buf, bytes_item("hello frame", 7, -3));
  wire::append_control_request(buf, 42, wire::ControlOp::kCreate,
                               "camera\x1F" "cam0\x1F" "args");
  wire::append_control_reply(buf, 42, false, "boom");
  wire::append_eos_frame(buf);

  wire::FrameReader r;
  std::vector<wire::Frame> frames;
  for (std::uint8_t b : buf) {  // worst-case reassembly: 1-byte reads
    r.feed(&b, 1);
    while (auto f = r.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 4u);

  EXPECT_EQ(frames[0].type, wire::FrameType::kData);
  EXPECT_EQ(frames[0].item.seq, 7u);
  EXPECT_EQ(frames[0].item.kind, -3);
  EXPECT_EQ(item_text(frames[0].item), "hello frame");

  EXPECT_EQ(frames[1].type, wire::FrameType::kControlReq);
  EXPECT_EQ(frames[1].request_id, 42u);
  EXPECT_EQ(frames[1].op, static_cast<std::uint8_t>(wire::ControlOp::kCreate));
  EXPECT_EQ(frames[1].text, "camera\x1F" "cam0\x1F" "args");

  EXPECT_EQ(frames[2].type, wire::FrameType::kControlRep);
  EXPECT_EQ(frames[2].op, 1u);  // status: error
  EXPECT_EQ(frames[2].text, "boom");

  EXPECT_EQ(frames[3].type, wire::FrameType::kEos);
  EXPECT_TRUE(frames[3].item.is_eos());
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Wire, EmptyPayloadDataFrameRoundTrips) {
  std::vector<std::uint8_t> buf;
  Item x = Item::of_bytes(nullptr, 0);
  x.seq = 1;
  wire::append_data_frame(buf, x);
  wire::FrameReader r;
  r.feed(buf.data(), buf.size());
  auto f = r.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->item.bytes_size(), 0u);
  EXPECT_EQ(f->item.seq, 1u);
}

TEST(Wire, TruncatedFramesAreIncompleteNotErrors) {
  std::vector<std::uint8_t> buf;
  wire::append_data_frame(buf, bytes_item("payload", 1, 0));
  for (std::size_t n = 0; n < buf.size(); ++n) {
    wire::FrameReader r;
    r.feed(buf.data(), n);
    EXPECT_FALSE(r.next().has_value()) << "prefix of " << n << " bytes";
  }
}

TEST(Wire, HostileHeadersThrowRemoteErrorAndPoison) {
  const auto reject = [](std::vector<std::uint8_t> buf) {
    wire::FrameReader r;
    r.feed(buf.data(), buf.size());
    EXPECT_THROW((void)r.next(), RemoteError);
    // Poisoned: framing is lost for good, even for valid follow-up bytes.
    std::vector<std::uint8_t> good;
    wire::append_eos_frame(good);
    r.feed(good.data(), good.size());
    EXPECT_THROW((void)r.next(), RemoteError);
  };

  std::vector<std::uint8_t> bad_magic;
  wire::append_eos_frame(bad_magic);
  bad_magic[0] = 0x00;
  reject(bad_magic);

  std::vector<std::uint8_t> bad_version;
  wire::append_eos_frame(bad_version);
  bad_version[2] = 99;
  reject(bad_version);

  std::vector<std::uint8_t> bad_type;
  wire::append_eos_frame(bad_type);
  bad_type[3] = 200;
  reject(bad_type);

  std::vector<std::uint8_t> oversize;
  wire::append_eos_frame(oversize);
  oversize[4] = 0xFF;  // body length 0xFF000000: past any sane frame cap
  reject(oversize);

  std::vector<std::uint8_t> eos_with_body;
  wire::append_control_reply(eos_with_body, 1, true, "x");
  eos_with_body[3] = static_cast<std::uint8_t>(wire::FrameType::kEos);
  reject(eos_with_body);

  // Control frame too short for its own metadata.
  std::vector<std::uint8_t> short_control;
  wire::append_eos_frame(short_control);
  short_control[3] = static_cast<std::uint8_t>(wire::FrameType::kControlReq);
  reject(short_control);

  // Data frame shorter than the item metadata block.
  std::vector<std::uint8_t> short_data;
  wire::append_control_reply(short_data, 1, true, "");  // 9-byte body
  short_data[3] = static_cast<std::uint8_t>(wire::FrameType::kData);
  reject(short_data);
}

TEST(Wire, BitFlippedStreamNeverCrashesOrOverReads) {
  std::vector<std::uint8_t> buf;
  wire::append_data_frame(buf, bytes_item("fuzz me", 9, 2));
  wire::append_control_request(buf, 5, wire::ControlOp::kTypespecOut, "c\x1F"
                                                                      "0");
  wire::append_eos_frame(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = buf;
      bad[i] ^= static_cast<std::uint8_t>(1u << bit);
      wire::FrameReader r;
      r.feed(bad.data(), bad.size());
      try {
        while (r.next().has_value()) {
        }
      } catch (const RemoteError&) {
        // the only acceptable exception
      }
    }
  }
}

// ---------- loopback sockets -------------------------------------------------------

/// Items arriving as kMsgNetDeliver at a plain collector thread.
struct Collector {
  std::vector<Item> items;
  bool eos = false;
  rt::ThreadId tid = rt::kNoThread;

  void spawn(rt::Runtime& rtm) {
    tid = rtm.spawn("collect", rt::kPriorityData,
                    [this](rt::Runtime&, rt::Message m) {
                      if (m.type == kMsgNetDeliver) {
                        Item x = m.take<Item>();
                        if (x.is_eos()) {
                          eos = true;
                        } else {
                          items.push_back(std::move(x));
                        }
                      }
                      return rt::CodeResult::kContinue;
                    });
  }
};

/// Drives a RealClock runtime in small slices until `done` or the budget
/// runs out. Socket events arrive via post_external between slices, so a
/// single run() would stop at the first quiescent moment.
template <typename Pred>
bool drive_until(rt::Runtime& rtm, Pred done,
                 rt::Time budget = rt::seconds(10)) {
  const rt::Time deadline = rtm.now() + budget;
  while (!done()) {
    if (rtm.now() >= deadline) return false;
    rtm.run_until(rtm.now() + rt::milliseconds(2));
  }
  return true;
}

struct LoopbackRig {
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io{rtm};
  std::unique_ptr<SocketTransport> server;
  std::unique_ptr<SocketTransport> client;

  explicit LoopbackRig(bool udp = false) {
    SocketConfig scfg;
    scfg.port = 0;  // kernel-assigned
    scfg.udp = udp;
    server = SocketTransport::listen(rtm, io, scfg);
    SocketConfig ccfg;
    ccfg.port = server->local_port();
    ccfg.udp = udp;
    client = SocketTransport::connect(rtm, io, ccfg);
  }
};

TEST(SocketTransport, TcpLoopbackDeliversInOrderWithEos) {
  LoopbackRig rig;
  Collector got;
  got.spawn(rig.rtm);
  rig.server->attach_receiver(got.tid);

  for (int i = 0; i < 20; ++i) {
    rig.client->send(rig.rtm, bytes_item("item" + std::to_string(i),
                                         static_cast<std::uint64_t>(i), i));
  }
  rig.client->send(rig.rtm, Item::eos());

  ASSERT_TRUE(drive_until(rig.rtm, [&] { return got.eos; }));
  ASSERT_EQ(got.items.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got.items[i].seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(got.items[i].kind, i);
    EXPECT_EQ(item_text(got.items[i]), "item" + std::to_string(i));
  }
  EXPECT_TRUE(rig.client->eos_flushed());
  EXPECT_EQ(rig.client->stats().frames_sent, 20u);
  EXPECT_EQ(rig.server->stats().frames_received, 21u);  // + EOS
  EXPECT_EQ(rig.server->stats().accepts, 1u);
  EXPECT_EQ(rig.server->stats().protocol_errors, 0u);
  EXPECT_EQ(rig.client->kind(), "tcp");
  EXPECT_EQ(rig.server->kind(), "tcp");
}

TEST(SocketTransport, ItemsBeforeAttachAreBufferedNotLost) {
  LoopbackRig rig;
  rig.client->send(rig.rtm, bytes_item("early", 1, 0));
  rig.client->send(rig.rtm, Item::eos());
  // Let the frames arrive with nobody attached yet.
  ASSERT_TRUE(drive_until(
      rig.rtm, [&] { return rig.server->stats().frames_received >= 2; }));

  Collector got;
  got.spawn(rig.rtm);
  rig.server->attach_receiver(got.tid);
  ASSERT_TRUE(drive_until(rig.rtm, [&] { return got.eos; }));
  ASSERT_EQ(got.items.size(), 1u);
  EXPECT_EQ(item_text(got.items[0]), "early");
}

TEST(SocketTransport, ConnectRetriesWithBackoffUntilServerAppears) {
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io(rtm);

  // Learn a free port, then free it again: the client must now retry
  // against nothing until the listener is (re)created.
  std::uint16_t port = 0;
  {
    SocketConfig probe;
    probe.port = 0;
    port = SocketTransport::listen(rtm, io, probe)->local_port();
  }
  SocketConfig ccfg;
  ccfg.port = port;
  ccfg.retry_initial = rt::milliseconds(20);
  auto client = SocketTransport::connect(rtm, io, ccfg);

  rtm.run_until(rtm.now() + rt::milliseconds(80));  // a few failed attempts
  EXPECT_FALSE(client->connected());
  EXPECT_GE(client->stats().retries, 1u);

  SocketConfig scfg;
  scfg.port = port;
  auto server = SocketTransport::listen(rtm, io, scfg);
  Collector got;
  got.spawn(rtm);
  server->attach_receiver(got.tid);

  client->send(rtm, bytes_item("after retry", 1, 0));
  client->send(rtm, Item::eos());
  ASSERT_TRUE(drive_until(rtm, [&] { return got.eos; }));
  ASSERT_EQ(got.items.size(), 1u);
  EXPECT_EQ(item_text(got.items[0]), "after retry");
  // connected() is transient — after the EOS exchange both ends tear the
  // connection down — but the successful connect stays on the books.
  EXPECT_EQ(client->stats().connects, 1u);
}

TEST(SocketTransport, PeerDeathWithoutEosSynthesizesEos) {
  LoopbackRig rig;
  Collector got;
  got.spawn(rig.rtm);
  rig.server->attach_receiver(got.tid);

  rig.client->send(rig.rtm, bytes_item("one", 1, 0));
  rig.client->send(rig.rtm, bytes_item("two", 2, 0));
  ASSERT_TRUE(drive_until(rig.rtm, [&] { return got.items.size() == 2; }));
  EXPECT_FALSE(got.eos);

  rig.client.reset();  // the peer process "dies": fd closes, no EOS frame
  ASSERT_TRUE(drive_until(rig.rtm, [&] { return got.eos; }));
  EXPECT_EQ(got.items.size(), 2u) << "synthetic EOS must not invent data";
  EXPECT_EQ(rig.server->stats().peer_resets, 1u);
}

TEST(SocketTransport, MalformedStreamDropsConnectionNotProcess) {
  // A genuinely hostile client: a raw socket writing framing garbage. The
  // server must count a protocol error, drop that connection, deliver a
  // synthetic EOS (the stream will never end properly), and keep serving.
  rt::Runtime rtm{std::make_unique<rt::RealClock>()};
  rt::IoBridge io(rtm);
  SocketConfig scfg;
  scfg.port = 0;
  auto server = SocketTransport::listen(rtm, io, scfg);
  Collector got;
  got.spawn(rtm);
  server->attach_receiver(got.tid);

  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(server->local_port());
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&a), sizeof a), 0);
  const std::vector<std::uint8_t> junk(64, 0xAB);  // wrong magic everywhere
  ASSERT_EQ(::write(raw, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));

  ASSERT_TRUE(drive_until(
      rtm, [&] { return server->stats().protocol_errors >= 1; }));
  ASSERT_TRUE(drive_until(rtm, [&] { return got.eos; }));
  EXPECT_TRUE(got.items.size() == 0u) << "garbage must not become items";
  ::close(raw);

  // The listener survives: a well-behaved client connects and delivers.
  SocketConfig ccfg;
  ccfg.port = server->local_port();
  auto client = SocketTransport::connect(rtm, io, ccfg);
  client->send(rtm, bytes_item("after the attack", 1, 0));
  ASSERT_TRUE(drive_until(rtm, [&] { return got.items.size() == 1; }));
  EXPECT_EQ(item_text(got.items[0]), "after the attack");
}

TEST(SocketTransport, UdpLoopbackBestEffortDelivery) {
  LoopbackRig rig(/*udp=*/true);
  Collector got;
  got.spawn(rig.rtm);
  rig.server->attach_receiver(got.tid);
  EXPECT_EQ(rig.client->kind(), "udp");

  for (int i = 0; i < 50; ++i) {
    rig.client->send(rig.rtm, bytes_item("dgram" + std::to_string(i),
                                         static_cast<std::uint64_t>(i), 0));
  }
  rig.client->send(rig.rtm, Item::eos());

  // Loopback UDP is reliable in practice, but the contract is best-effort:
  // accept any subset as long as what arrives is intact and ordered.
  drive_until(rig.rtm, [&] { return got.eos; }, rt::seconds(2));
  EXPECT_LE(got.items.size(), 50u);
  EXPECT_GE(got.items.size(), 1u);
  for (std::size_t k = 0; k < got.items.size(); ++k) {
    const auto seq = got.items[k].seq;
    EXPECT_EQ(item_text(got.items[k]), "dgram" + std::to_string(seq));
    if (k > 0) {
      EXPECT_GT(seq, got.items[k - 1].seq);
    }
  }
}

// ---------- netpipes over a real socket -------------------------------------------

std::vector<std::uint8_t> encode_string(const Item& x) {
  const auto* s = x.payload<std::string>();
  return s != nullptr ? std::vector<std::uint8_t>(s->begin(), s->end())
                      : std::vector<std::uint8_t>{};
}

Item decode_string(const std::vector<std::uint8_t>& b) {
  return Item::of<std::string>(std::string(b.begin(), b.end()));
}

TEST(SocketTransport, NetpipePipelineRunsUnchangedOverTcp) {
  // The tentpole claim: NetSender/NetReceiver + marshalling filters work
  // over a real socket exactly as over SimLink — only the Transport differs.
  LoopbackRig rig;

  std::vector<Item> payloads;
  for (int i = 0; i < 10; ++i) {
    Item x = Item::of<std::string>("msg" + std::to_string(i));
    x.seq = static_cast<std::uint64_t>(i);
    payloads.push_back(std::move(x));
  }
  VectorSource src("src", payloads);
  ClockedPump pump("pump", 200.0);
  MarshalFilter marshal("marshal", encode_string, "text");
  NetSender tx("tx", *rig.client, "producer-node");
  NetReceiver rx("rx", *rig.server, "consumer-node");
  UnmarshalFilter unmarshal("unmarshal", decode_string, "text");
  CollectorSink sink("sink");

  Pipeline pipe;
  pipe.connect(src, 0, pump, 0);
  pipe.connect(pump, 0, marshal, 0);
  pipe.connect(marshal, 0, tx, 0);
  pipe.connect(rx, 0, unmarshal, 0);
  pipe.connect(unmarshal, 0, sink, 0);

  // The receiver's offer now tells type checking HOW the flow travels.
  const Typespec offer = rx.output_offer(0);
  EXPECT_EQ(offer.get<std::string>(props::kTransport), "tcp");
  EXPECT_FALSE(offer.get<std::string>(props::kEndpoint).value_or("").empty());

  Realization real(rig.rtm, pipe);
  real.start();
  ASSERT_TRUE(drive_until(rig.rtm, [&] { return sink.eos_seen(); }));
  ASSERT_EQ(sink.count(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*sink.arrivals()[i].item.payload<std::string>(),
              "msg" + std::to_string(i));
  }
}

// ---------- the socket control link ------------------------------------------------

TEST(RemoteNode, CreateAndQueryAcrossTheControlLink) {
  LoopbackRig rig;
  Node node(rig.rtm, "video-server");
  node.register_factory(
      "counting-source",
      [](const std::string& name, const std::string& args) {
        return std::make_unique<CountingSource>(
            name, static_cast<std::uint64_t>(std::stoul(args)));
      });
  NodeServer server(rig.rtm, node, *rig.server);
  RemoteNode remote(rig.rtm, *rig.client, "video-server",
                    rt::seconds(5));

  EXPECT_EQ(remote.create("counting-source", "cam0", "25"), "cam0");
  ASSERT_NE(node.lookup("cam0"), nullptr);

  const Typespec offer = remote.output_offer("cam0", 0);
  EXPECT_TRUE(offer.empty());  // CountingSource offers no properties

  EXPECT_THROW((void)remote.create("no-such-type", "x", ""), RemoteError);
  EXPECT_THROW((void)remote.output_offer("ghost", 0), RemoteError);

  // start_flow reaches the server's handler and returns its reply.
  server.on_start([](const std::string& args) { return "started:" + args; });
  EXPECT_EQ(remote.start_flow("go"), "started:go");
  EXPECT_TRUE(server.start_requested());
}

TEST(RemoteNode, BinderNegotiatesAcrossTheControlLink) {
  LoopbackRig rig;
  Node node(rig.rtm, "far");
  class OfferingSource : public CountingSource {
   public:
    OfferingSource() : CountingSource("cam", 10) {}
    Typespec output_offer(int) const override {
      return Typespec{{props::kItemType, std::string("video")},
                      {props::kFrameRate, Range{5, 30}}};
    }
  };
  node.adopt(std::make_unique<OfferingSource>());
  NodeServer server(rig.rtm, node, *rig.server);
  RemoteNode producer(rig.rtm, *rig.client, "far", rt::seconds(5));

  Node local(rig.rtm, "near");
  class NeedySink : public CollectorSink {
   public:
    NeedySink() : CollectorSink("screen") {}
    Typespec input_requirement(int) const override {
      return Typespec{{props::kItemType, std::string("video")},
                      {props::kFrameRate, Range{10, 60}}};
    }
  };
  local.adopt(std::make_unique<NeedySink>());
  LocalNodeEndpoint consumer(rig.rtm, local);

  EndpointBindingRequest req;
  req.producer_node = &producer;
  req.producer = "cam";
  req.consumer_node = &consumer;
  req.consumer = "screen";
  req.link = rig.client.get();
  const BindingResult out = negotiate(rig.rtm, req);
  ASSERT_TRUE(out.ok) << out.failure;
  EXPECT_EQ(out.agreed.get<Range>(props::kFrameRate), (Range{10, 30}));
}

}  // namespace
}  // namespace infopipe::net
