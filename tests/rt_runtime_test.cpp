// Unit tests for the message-based user-level thread package (ip_rt).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/runtime.hpp"

namespace infopipe::rt {
namespace {

constexpr int kMsgPing = 1;
constexpr int kMsgPong = 2;
constexpr int kMsgStop = 3;

TEST(Runtime, SpawnedThreadRunsOnFirstMessage) {
  Runtime rt;
  int invocations = 0;
  ThreadId t = rt.spawn("worker", kPriorityData,
                        [&](Runtime&, Message) -> CodeResult {
                          ++invocations;
                          return CodeResult::kContinue;
                        });
  rt.run();
  EXPECT_EQ(invocations, 0) << "code function must not run before a message";

  rt.send(t, Message{kMsgPing, MsgClass::kData});
  rt.run();
  EXPECT_EQ(invocations, 1);

  rt.send(t, Message{kMsgPing, MsgClass::kData});
  rt.send(t, Message{kMsgPing, MsgClass::kData});
  rt.run();
  EXPECT_EQ(invocations, 3) << "one invocation per message";
}

TEST(Runtime, TerminateDestroysThread) {
  Runtime rt;
  ThreadId t = rt.spawn("once", kPriorityData, [](Runtime&, Message) {
    return CodeResult::kTerminate;
  });
  EXPECT_TRUE(rt.alive(t));
  rt.send(t, Message{kMsgPing, MsgClass::kData});
  rt.run();
  EXPECT_FALSE(rt.alive(t));
  // Sends to a dead thread are dropped, not fatal.
  rt.send(t, Message{kMsgPing, MsgClass::kData});
  rt.run();
  EXPECT_EQ(rt.stats().messages_dropped, 1u);
}

TEST(Runtime, PingPongBetweenThreads) {
  Runtime rt;
  std::vector<std::string> trace;
  ThreadId ponger = rt.spawn("ponger", kPriorityData,
                             [&](Runtime& r, Message m) -> CodeResult {
                               trace.push_back("pong");
                               r.reply(m, Message{kMsgPong, MsgClass::kReply});
                               return CodeResult::kContinue;
                             });
  ThreadId pinger = rt.spawn("pinger", kPriorityData,
                             [&](Runtime& r, Message) -> CodeResult {
                               for (int i = 0; i < 3; ++i) {
                                 trace.push_back("ping");
                                 Message rep = r.call(
                                     ponger, Message{kMsgPing, MsgClass::kData});
                                 EXPECT_EQ(rep.type, kMsgPong);
                               }
                               return CodeResult::kTerminate;
                             });
  rt.send(pinger, Message{kMsgPing, MsgClass::kData});
  rt.run();
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace, (std::vector<std::string>{"ping", "pong", "ping", "pong",
                                             "ping", "pong"}));
}

TEST(Runtime, NestedReceiveSuspendsMidMessage) {
  Runtime rt;
  std::vector<int> seen;
  ThreadId t = rt.spawn("suspender", kPriorityData,
                        [&](Runtime& r, Message first) -> CodeResult {
                          seen.push_back(first.type);
                          // Suspend inside the handler waiting for two more.
                          Message a = r.receive();
                          Message b = r.receive();
                          seen.push_back(a.type);
                          seen.push_back(b.type);
                          return CodeResult::kTerminate;
                        });
  rt.send(t, Message{10, MsgClass::kData});
  rt.run();
  EXPECT_EQ(seen, (std::vector<int>{10}));
  rt.send(t, Message{11, MsgClass::kData});
  rt.run();
  rt.send(t, Message{12, MsgClass::kData});
  rt.run();
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12}));
  EXPECT_FALSE(rt.alive(t));
}

TEST(Runtime, ControlMessagesOvertakeQueuedData) {
  Runtime rt;
  std::vector<int> order;
  ThreadId t = rt.spawn("sink", kPriorityData,
                        [&](Runtime&, Message m) -> CodeResult {
                          order.push_back(m.type);
                          return CodeResult::kContinue;
                        });
  rt.send(t, Message{1, MsgClass::kData});
  rt.send(t, Message{2, MsgClass::kData});
  rt.send(t, Message{99, MsgClass::kControl});
  rt.run();
  // The control message is dispatched first even though it arrived last.
  EXPECT_EQ(order, (std::vector<int>{99, 1, 2}));
}

TEST(Runtime, ReceiveMatchingLeavesOthersQueued) {
  Runtime rt;
  std::vector<int> order;
  ThreadId t = rt.spawn("selective", kPriorityData,
                        [&](Runtime& r, Message m) -> CodeResult {
                          order.push_back(m.type);
                          Message wanted = r.receive_matching(
                              [](const Message& x) { return x.type == 42; });
                          order.push_back(wanted.type);
                          // The skipped message is still queued and triggers
                          // the next invocation.
                          return CodeResult::kContinue;
                        });
  rt.send(t, Message{1, MsgClass::kData});
  rt.send(t, Message{7, MsgClass::kData});
  rt.send(t, Message{42, MsgClass::kData});
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 42, 7}));
}

TEST(Runtime, PriorityOrdersReadyThreads) {
  Runtime rt;
  std::vector<std::string> order;
  auto mk = [&](const std::string& name, Priority p) {
    return rt.spawn(name, p, [&order, name](Runtime&, Message) {
      order.push_back(name);
      return CodeResult::kTerminate;
    });
  };
  ThreadId lo = mk("lo", kPriorityIdle);
  ThreadId hi = mk("hi", kPriorityControl);
  ThreadId mid = mk("mid", kPriorityData);
  rt.send(lo, Message{});
  rt.send(hi, Message{});
  rt.send(mid, Message{});
  rt.run();
  EXPECT_EQ(order, (std::vector<std::string>{"hi", "mid", "lo"}));
}

TEST(Runtime, MessageConstraintRaisesEffectivePriority) {
  Runtime rt;
  std::vector<std::string> order;
  auto body = [&](const std::string& name) {
    return [&order, name](Runtime&, Message) {
      order.push_back(name);
      return CodeResult::kTerminate;
    };
  };
  ThreadId plain = rt.spawn("plain", kPriorityData, body("plain"));
  ThreadId boosted = rt.spawn("boosted", kPriorityIdle, body("boosted"));
  rt.send(plain, Message{});
  Message m{};
  m.constraint = Constraint{kPriorityTimer, kTimeNever};
  rt.send(boosted, std::move(m));
  rt.run();
  // boosted has the lower static priority but its first queued message
  // carries a high-priority constraint (§4 semantics).
  EXPECT_EQ(order, (std::vector<std::string>{"boosted", "plain"}));
}

TEST(Runtime, ConstraintInheritedBySentMessages) {
  Runtime rt;
  Priority observed = -1;
  ThreadId sink = rt.spawn("sink", kPriorityIdle,
                           [&](Runtime&, Message m) -> CodeResult {
                             observed = m.constraint ? m.constraint->priority
                                                     : Priority{-1};
                             return CodeResult::kTerminate;
                           });
  ThreadId relay = rt.spawn("relay", kPriorityIdle,
                            [&](Runtime& r, Message) -> CodeResult {
                              // No explicit constraint: must inherit ours.
                              r.send(sink, Message{kMsgPing, MsgClass::kData});
                              return CodeResult::kTerminate;
                            });
  Message m{};
  m.constraint = Constraint{kPriorityTimer, kTimeNever};
  rt.send(relay, std::move(m));
  rt.run();
  EXPECT_EQ(observed, kPriorityTimer);
}

TEST(Runtime, PreemptionOnHigherPrioritySend) {
  Runtime rt;
  std::vector<std::string> order;
  ThreadId hi = rt.spawn("hi", kPriorityControl, [&](Runtime&, Message) {
    order.push_back("hi");
    return CodeResult::kTerminate;
  });
  ThreadId lo = rt.spawn("lo", kPriorityData, [&](Runtime& r, Message) {
    order.push_back("lo-before");
    r.send(hi, Message{});  // wakes a higher-priority thread: preemption point
    order.push_back("lo-after");
    return CodeResult::kTerminate;
  });
  rt.send(lo, Message{});
  rt.run();
  EXPECT_EQ(order, (std::vector<std::string>{"lo-before", "hi", "lo-after"}));
  EXPECT_GE(rt.stats().preemptions, 1u);
}

TEST(Runtime, PriorityInheritanceAvoidsInversion) {
  Runtime rt;
  std::vector<std::string> order;
  // "server" is low priority; "caller" is high priority and calls it
  // synchronously; "middle" would otherwise starve the server.
  ThreadId server = rt.spawn("server", kPriorityIdle,
                             [&](Runtime& r, Message m) -> CodeResult {
                               order.push_back("server");
                               r.reply(m, Message{kMsgPong, MsgClass::kReply});
                               return CodeResult::kContinue;
                             });
  ThreadId middle = rt.spawn("middle", kPriorityData, [&](Runtime&, Message) {
    order.push_back("middle");
    return CodeResult::kTerminate;
  });
  ThreadId caller = rt.spawn("caller", kPriorityControl,
                             [&](Runtime& r, Message) -> CodeResult {
                               order.push_back("caller");
                               (void)r.call(server,
                                            Message{kMsgPing, MsgClass::kData});
                               order.push_back("caller-done");
                               return CodeResult::kTerminate;
                             });
  rt.send(caller, Message{});
  rt.send(middle, Message{});
  rt.run();
  // With inheritance the server runs before middle despite its low static
  // priority, because the blocked high-priority caller donates.
  EXPECT_EQ(order, (std::vector<std::string>{"caller", "server", "caller-done",
                                             "middle"}));
}

TEST(Runtime, SleepAndVirtualTime) {
  Runtime rt;
  std::vector<Time> wakes;
  ThreadId t = rt.spawn("sleeper", kPriorityData,
                        [&](Runtime& r, Message) -> CodeResult {
                          for (int i = 1; i <= 3; ++i) {
                            r.sleep_until(milliseconds(10) * i);
                            wakes.push_back(r.now());
                          }
                          return CodeResult::kTerminate;
                        });
  rt.send(t, Message{});
  rt.run();
  EXPECT_EQ(wakes, (std::vector<Time>{milliseconds(10), milliseconds(20),
                                      milliseconds(30)}));
  EXPECT_EQ(rt.now(), milliseconds(30));
}

TEST(Runtime, SendAtDeliversAtTime) {
  Runtime rt;
  std::vector<std::pair<int, Time>> arrivals;
  ThreadId t = rt.spawn("timed", kPriorityData,
                        [&](Runtime& r, Message m) -> CodeResult {
                          arrivals.emplace_back(m.type, r.now());
                          return CodeResult::kContinue;
                        });
  rt.send_at(milliseconds(5), t, Message{2, MsgClass::kTimer});
  rt.send_at(milliseconds(1), t, Message{1, MsgClass::kTimer});
  rt.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], std::make_pair(1, milliseconds(1)));
  EXPECT_EQ(arrivals[1], std::make_pair(2, milliseconds(5)));
}

TEST(Runtime, CancelTimersDropsOnlyMatchingPending) {
  Runtime rt;
  std::vector<std::pair<int, Time>> arrivals;
  ThreadId t = rt.spawn("timed", kPriorityData,
                        [&](Runtime& r, Message m) -> CodeResult {
                          arrivals.emplace_back(m.type, r.now());
                          return CodeResult::kContinue;
                        });
  ThreadId other = rt.spawn("other", kPriorityData,
                            [&](Runtime& r, Message m) -> CodeResult {
                              arrivals.emplace_back(m.type, r.now());
                              return CodeResult::kContinue;
                            });
  rt.send_at(milliseconds(5), t, Message{7, MsgClass::kTimer});
  rt.send_at(milliseconds(9), t, Message{7, MsgClass::kTimer});
  rt.send_at(milliseconds(3), t, Message{8, MsgClass::kTimer});
  rt.send_at(milliseconds(4), other, Message{7, MsgClass::kTimer});
  // Cancellation is target+type scoped: both type-7 timers aimed at `t`
  // vanish; the other thread's type 7 and t's type 8 still fire. Without
  // this, a stale timeout timer keeps run() from going quiescent (a real
  // stall under RealClock).
  EXPECT_EQ(rt.cancel_timers(t, 7), 2u);
  EXPECT_EQ(rt.cancel_timers(t, 7), 0u);  // nothing left to cancel
  rt.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], std::make_pair(8, milliseconds(3)));
  EXPECT_EQ(arrivals[1], std::make_pair(7, milliseconds(4)));
  EXPECT_EQ(rt.now(), milliseconds(4));  // nothing pending past the last fire
}

TEST(Runtime, RunUntilAdvancesClockExactly) {
  Runtime rt;
  rt.run_until(milliseconds(7));
  EXPECT_EQ(rt.now(), milliseconds(7));
  // Timers beyond the horizon do not fire.
  ThreadId t = rt.spawn("late", kPriorityData, [&](Runtime&, Message) {
    return CodeResult::kTerminate;
  });
  rt.send_at(milliseconds(100), t, Message{});
  rt.run_until(milliseconds(50));
  EXPECT_EQ(rt.now(), milliseconds(50));
  EXPECT_TRUE(rt.alive(t));
  rt.run_until(milliseconds(150));
  EXPECT_FALSE(rt.alive(t));
}

TEST(Runtime, BlockingOpsOutsideThreadThrow) {
  Runtime rt;
  EXPECT_THROW((void)rt.receive(), RuntimeError);
  EXPECT_THROW(rt.yield(), RuntimeError);
  EXPECT_THROW(rt.sleep_until(1), RuntimeError);
  EXPECT_THROW((void)rt.call(1, Message{}), RuntimeError);
}

TEST(Runtime, ExceptionInCodeFunctionSurfacesFromRun) {
  Runtime rt;
  ThreadId t = rt.spawn("thrower", kPriorityData, [](Runtime&, Message) -> CodeResult {
    throw std::logic_error("boom");
  });
  rt.send(t, Message{});
  EXPECT_THROW(rt.run(), RuntimeError);
  EXPECT_FALSE(rt.alive(t));
}

TEST(Runtime, KillTearsDownWithoutUnwinding) {
  Runtime rt;
  int progressed = 0;
  ThreadId t = rt.spawn("victim", kPriorityData,
                        [&](Runtime& r, Message) -> CodeResult {
                          ++progressed;
                          (void)r.receive();  // blocks forever
                          ++progressed;       // never reached
                          return CodeResult::kTerminate;
                        });
  rt.send(t, Message{});
  rt.run();
  EXPECT_EQ(progressed, 1);
  rt.kill(t);
  EXPECT_FALSE(rt.alive(t));
  rt.run();
  EXPECT_EQ(progressed, 1);
}

TEST(Runtime, StatsCountSwitchesAndMessages) {
  Runtime rt;
  ThreadId t = rt.spawn("w", kPriorityData, [](Runtime&, Message) {
    return CodeResult::kContinue;
  });
  rt.reset_stats();
  rt.send(t, Message{});
  rt.run();
  EXPECT_EQ(rt.stats().messages_sent, 1u);
  // One slice: switch in + switch out.
  EXPECT_GE(rt.stats().context_switches, 2u);
}

TEST(Runtime, ManyThreadsStress) {
  Runtime rt;
  constexpr int kThreads = 64;
  constexpr int kRounds = 50;
  int done = 0;
  std::vector<ThreadId> ids;
  ids.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ids.push_back(rt.spawn(
        "w" + std::to_string(i), kPriorityData,
        [&, i](Runtime& r, Message m) -> CodeResult {
          int round = m.type;
          if (round >= kRounds) {
            ++done;
            return CodeResult::kTerminate;
          }
          r.send(ids[static_cast<std::size_t>((i + 1) % kThreads)],
                 Message{round + 1, MsgClass::kData});
          return CodeResult::kContinue;
        }));
  }
  rt.send(ids[0], Message{0, MsgClass::kData});
  rt.run();
  EXPECT_EQ(done, 1);  // exactly one chain reaches kRounds
}

TEST(RuntimeOptions, ControlPriorityCanBeDisabled) {
  RuntimeOptions opt;
  opt.control_overtakes_data = false;
  Runtime rt(nullptr, opt);
  std::vector<int> order;
  ThreadId t = rt.spawn("sink", kPriorityData,
                        [&](Runtime&, Message m) -> CodeResult {
                          order.push_back(m.type);
                          return CodeResult::kContinue;
                        });
  rt.send(t, Message{1, MsgClass::kData});
  rt.send(t, Message{99, MsgClass::kControl});
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{1, 99})) << "FIFO when disabled";
}

TEST(RuntimeOptions, PreemptionCanBeDisabled) {
  RuntimeOptions opt;
  opt.preemption = false;
  Runtime rt(nullptr, opt);
  std::vector<std::string> order;
  ThreadId hi = rt.spawn("hi", kPriorityControl, [&](Runtime&, Message) {
    order.push_back("hi");
    return CodeResult::kTerminate;
  });
  ThreadId lo = rt.spawn("lo", kPriorityData, [&](Runtime& r, Message) {
    order.push_back("lo-before");
    r.send(hi, Message{});
    order.push_back("lo-after");  // not preempted: finishes its slice
    return CodeResult::kTerminate;
  });
  rt.send(lo, Message{});
  rt.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"lo-before", "lo-after", "hi"}));
  EXPECT_EQ(rt.stats().preemptions, 0u);
}

TEST(RuntimeOptions, InheritanceCanBeDisabled) {
  RuntimeOptions opt;
  opt.priority_inheritance = false;
  Runtime rt(nullptr, opt);
  std::vector<std::string> order;
  ThreadId server = rt.spawn("server", kPriorityIdle,
                             [&](Runtime& r, Message m) -> CodeResult {
                               order.push_back("server");
                               r.reply(m, Message{0, MsgClass::kReply});
                               return CodeResult::kContinue;
                             });
  ThreadId middle = rt.spawn("middle", kPriorityData, [&](Runtime&, Message) {
    order.push_back("middle");
    return CodeResult::kTerminate;
  });
  ThreadId caller = rt.spawn("caller", kPriorityControl,
                             [&](Runtime& r, Message) -> CodeResult {
                               order.push_back("caller");
                               (void)r.call(server, Message{1, MsgClass::kData});
                               order.push_back("caller-done");
                               return CodeResult::kTerminate;
                             });
  rt.send(caller, Message{});
  rt.send(middle, Message{});
  rt.run();
  // Without inheritance the mid-priority thread overtakes the low-priority
  // server the high-priority caller is waiting on: classic inversion.
  EXPECT_EQ(order, (std::vector<std::string>{"caller", "middle", "server",
                                             "caller-done"}));
}

TEST(Runtime, DeadlineBreaksPriorityTies) {
  Runtime rt;
  std::vector<std::string> order;
  auto body = [&](const std::string& name) {
    return [&order, name](Runtime&, Message) {
      order.push_back(name);
      return CodeResult::kTerminate;
    };
  };
  ThreadId a = rt.spawn("late-deadline", kPriorityData, body("late"));
  ThreadId b = rt.spawn("early-deadline", kPriorityData, body("early"));
  Message ma{};
  ma.constraint = Constraint{kPriorityData, milliseconds(100)};
  Message mb{};
  mb.constraint = Constraint{kPriorityData, milliseconds(10)};
  rt.send(a, std::move(ma));
  rt.send(b, std::move(mb));
  rt.run();
  EXPECT_EQ(order, (std::vector<std::string>{"early", "late"}));
}

// --- dedicated-host-thread primitives (ip_shard substrate) ------------------

TEST(Runtime, DoorbellIsStickyAcrossRings) {
  Doorbell bell;
  bell.ring();
  bell.ring();
  bell.wait();  // consumes ring 1 without blocking
  bell.wait();  // consumes ring 2 without blocking
  EXPECT_EQ(bell.rings(), 2u);
}

TEST(Runtime, HaltIsStickyAndClearable) {
  Runtime rt(std::make_unique<RealClock>());
  int runs = 0;
  const ThreadId t = rt.spawn("worker", kPriorityData,
                              [&](Runtime&, Message) -> CodeResult {
                                ++runs;
                                return CodeResult::kContinue;
                              });
  rt.request_halt();
  EXPECT_TRUE(rt.halted());
  rt.send(t, Message{});
  rt.run();  // halted: returns immediately, nothing dispatched
  EXPECT_EQ(runs, 0);
  rt.clear_halt();
  rt.run();
  EXPECT_EQ(runs, 1);
}

TEST(Runtime, RunServiceParksOnDoorbellAndHonorsHalt) {
  Runtime rt(std::make_unique<RealClock>());
  Doorbell bell;
  rt.set_external_notifier([&bell] { bell.ring(); });
  std::atomic<int> runs{0};
  const ThreadId t = rt.spawn("worker", kPriorityData,
                              [&](Runtime&, Message) -> CodeResult {
                                runs.fetch_add(1);
                                return CodeResult::kContinue;
                              });
  std::thread host([&] { rt.run_service(bell); });
  // Work injected from outside resumes the parked loop via the notifier.
  rt.post_external(t, Message{});
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (runs.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runs.load(), 1);
  rt.request_halt();
  bell.ring();
  host.join();  // a lost halt or wakeup would hang here (test TIMEOUT)
}

}  // namespace
}  // namespace infopipe::rt
