// Planner tests: thread/coroutine allocation for the paper's Figure 9
// configurations and composition-error diagnostics.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

Item combine2(Item a, Item) { return a; }

struct Fixture {
  CountingSource src{"src", 100};
  CollectorSink sink{"sink"};
  FreeRunningPump pump{"pump"};
  DefragmenterConsumer consumer{"consumer", combine2};
  DefragmenterConsumer consumer2{"consumer2", combine2};
  DefragmenterProducer producer{"producer", combine2};
  DefragmenterProducer producer2{"producer2", combine2};
  DefragmenterActive active{"active", combine2};
  DefragmenterActive active2{"active2", combine2};
  IdentityFunction fn{"fn"};
  IdentityFunction fn2{"fn2"};
};

// --- Figure 9: pipelines between a passive source and a passive sink --------
// §4: "If there is no need for coroutines ... the thread calls the pull
// functions of all components upstream of the pump, then calls push ...
// This case applies to the configurations a), b), and c). For configurations
// d), g), and h) there is a set of two coroutines and for configurations e)
// and f) there is a set of three coroutines associated with the pump."

TEST(Fig9, A_ProducerPullSide_ConsumerPushSide_OneThread) {
  Fixture f;
  auto ch = f.src >> f.producer >> f.pump >> f.consumer >> f.sink;
  Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 1u);
  EXPECT_EQ(p.sections[0].coroutine_count(), 0);
  EXPECT_EQ(p.sections[0].thread_count(), 1);
  EXPECT_EQ(p.hosted_info(f.producer)->mode, FlowMode::kPull);
  EXPECT_EQ(p.hosted_info(f.consumer)->mode, FlowMode::kPush);
}

TEST(Fig9, B_FunctionFunction_OneThread) {
  Fixture f;
  auto ch = f.src >> f.fn >> f.pump >> f.fn2 >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 1);
  EXPECT_EQ(p.total_coroutines(), 0);
}

TEST(Fig9, C_ConsumerConsumer_PushSide_OneThread) {
  Fixture f;
  auto ch = f.src >> f.pump >> f.consumer >> f.consumer2 >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 1);
  EXPECT_EQ(p.total_coroutines(), 0);
}

TEST(Fig9, D_ActiveThenFunction_TwoThreads) {
  Fixture f;
  auto ch = f.src >> f.pump >> f.active >> f.fn >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 2);
  EXPECT_TRUE(p.hosted_info(f.active)->needs_coroutine);
  EXPECT_FALSE(p.hosted_info(f.fn)->needs_coroutine);
}

TEST(Fig9, E_ConsumerPullSide_ProducerPushSide_ThreeThreads) {
  Fixture f;
  // source -> consumer -> PUMP -> producer -> sink: both adapted styles.
  auto ch = f.src >> f.consumer >> f.pump >> f.producer >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 3);
  EXPECT_TRUE(p.hosted_info(f.consumer)->needs_coroutine);
  EXPECT_EQ(p.hosted_info(f.consumer)->mode, FlowMode::kPull);
  EXPECT_TRUE(p.hosted_info(f.producer)->needs_coroutine);
  EXPECT_EQ(p.hosted_info(f.producer)->mode, FlowMode::kPush);
}

TEST(Fig9, F_TwoActives_ThreeThreads) {
  Fixture f;
  auto ch = f.src >> f.pump >> f.active >> f.active2 >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 3);
}

TEST(Fig9, G_ConsumerThenActive_TwoThreads) {
  Fixture f;
  // consumer on the push side is direct; the active object needs one.
  auto ch = f.src >> f.pump >> f.consumer >> f.active >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 2);
  EXPECT_FALSE(p.hosted_info(f.consumer)->needs_coroutine);
  EXPECT_TRUE(p.hosted_info(f.active)->needs_coroutine);
}

TEST(Fig9, H_ConsumerProducer_BothPushSide_TwoThreads) {
  Fixture f;
  // Same component sequence as e) but the pump sits upstream of both:
  // the consumer becomes direct and only the producer needs a coroutine.
  auto ch = f.src >> f.pump >> f.consumer >> f.producer >> f.sink;
  Plan p = plan(ch.pipeline());
  EXPECT_EQ(p.total_threads(), 2);
  EXPECT_FALSE(p.hosted_info(f.consumer)->needs_coroutine);
  EXPECT_TRUE(p.hosted_info(f.producer)->needs_coroutine);
}

// --- sections and buffers ---------------------------------------------------

TEST(Planner, BufferSplitsPipelineIntoTwoSections) {
  Fixture f;
  Buffer buf("buf", 8);
  FreeRunningPump pump2("pump2");
  auto ch = f.src >> f.pump >> f.fn >> buf >> f.fn2 >> pump2 >> f.sink;
  Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 2u);
  EXPECT_EQ(p.total_threads(), 2);
  EXPECT_EQ(p.hosted_info(f.fn)->mode, FlowMode::kPush);
  EXPECT_EQ(p.hosted_info(f.fn2)->mode, FlowMode::kPull);
}

TEST(Planner, ActiveSourceAndActiveSinkAreDrivers) {
  class Gen : public ClockedSourceBase {
   public:
    Gen() : ClockedSourceBase("gen", 100.0) {}

   protected:
    Item generate() override { return Item::token(); }
  };
  class Dev : public ClockedSinkBase {
   public:
    Dev() : ClockedSinkBase("dev", 100.0) {}

   protected:
    void consume(Item) override {}
  };
  Gen gen;
  Dev dev;
  Buffer buf("buf", 4);
  IdentityFunction fn("fn");
  auto ch = gen >> fn >> buf >> dev;
  Plan p = plan(ch.pipeline());
  ASSERT_EQ(p.sections.size(), 2u);
  EXPECT_EQ(p.total_threads(), 2);
  EXPECT_EQ(p.hosted_info(fn)->mode, FlowMode::kPush);
}

// --- composition errors -----------------------------------------------------

TEST(PlannerErrors, NoDriverAnywhere) {
  Fixture f;
  auto ch = f.src >> f.fn >> f.sink;
  EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
}

TEST(PlannerErrors, TwoPumpsWithoutBuffer) {
  Fixture f;
  FreeRunningPump pump2("pump2");
  auto ch = f.src >> f.pump >> f.fn >> pump2 >> f.sink;
  EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
}

TEST(PlannerErrors, SectionWithoutDriverBehindBuffer) {
  Fixture f;
  Buffer buf("buf", 4);
  auto ch = f.src >> f.pump >> buf >> f.fn >> f.sink;
  EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
}

TEST(PlannerErrors, DanglingPort) {
  Fixture f;
  Pipeline p;
  p.connect(f.src, 0, f.pump, 0);  // pump output dangles
  EXPECT_THROW((void)plan(p), CompositionError);
}

TEST(PlannerErrors, SameFixedPolarityConnectionThrowsAtConnect) {
  // pump out-port (+) into pump in-port (+): §2.3's composition error.
  FreeRunningPump a("a");
  FreeRunningPump b("b");
  Pipeline p;
  EXPECT_THROW(p.connect(a, 0, b, 0), CompositionError);
}

TEST(PlannerErrors, BufferIntoBufferIsLegalButUndriven) {
  // buffer(-) -> buffer(-)? Out-port of buffer is negative, in-port of
  // buffer is negative: same polarity, rejected at connect time.
  Buffer b1("b1", 2);
  Buffer b2("b2", 2);
  Pipeline p;
  EXPECT_THROW(p.connect(b1, 0, b2, 0), CompositionError);
}

TEST(PlannerErrors, MulticastCannotBePulled) {
  Fixture f;
  MulticastTee tee("tee", 2);
  Pipeline p;
  // tee -> pump would mean the pump pulls from the tee, which is illegal:
  // the tee's out-ports are positive (push-only), the pump's in-port is
  // positive too — same-polarity error at connect time.
  EXPECT_THROW(p.connect(tee, 0, f.pump, 0), CompositionError);
  // And a passive source cannot push into the tee's passive in-port either.
  EXPECT_THROW(p.connect(f.src, 0, tee, 0), CompositionError);
}

TEST(PlannerErrors, CombineTeeCannotBePushed) {
  // pump -> combine-tee: combine's in-ports are positive, pump out positive.
  class Mix : public CombineTee {
   public:
    Mix() : CombineTee("mix", 2) {}
    Item combine(std::vector<Item> xs) override { return xs[0]; }
  };
  Mix mix;
  FreeRunningPump pump("pump");
  Pipeline p;
  EXPECT_THROW(p.connect(pump, 0, mix, 0), CompositionError);
}

TEST(PlannerErrors, ComponentInTwoPipelinesRejectedAtRealize) {
  Fixture f;
  auto ch = f.src >> f.pump >> f.sink;
  rt::Runtime rt;
  Realization real(rt, ch.pipeline());
  EXPECT_THROW(Realization dup(rt, ch.pipeline()), CompositionError);
}

// --- tees in legal positions --------------------------------------------------

TEST(Planner, MulticastFanOutWithinOneSection) {
  Fixture f;
  MulticastTee tee("tee", 2);
  CollectorSink sink2("sink2");
  Pipeline p;
  p.connect(f.src, 0, f.pump, 0);
  p.connect(f.pump, 0, tee, 0);
  p.connect(tee, 0, f.fn, 0);
  p.connect(f.fn, 0, f.sink, 0);
  p.connect(tee, 1, sink2, 0);
  Plan pl = plan(p);
  EXPECT_EQ(pl.total_threads(), 1);  // one pump drives the whole tree
}

TEST(Planner, MergeTeeMarksSharedTail) {
  Fixture f;
  MergeTee merge("merge", 2);
  FreeRunningPump pump2("pump2");
  CountingSource src2("src2", 100);
  Pipeline p;
  p.connect(f.src, 0, f.pump, 0);
  p.connect(src2, 0, pump2, 0);
  p.connect(f.pump, 0, merge, 0);
  p.connect(pump2, 0, merge, 1);
  p.connect(merge, 0, f.fn, 0);
  p.connect(f.fn, 0, f.sink, 0);
  Plan pl = plan(p);
  EXPECT_EQ(pl.sections.size(), 2u);
  EXPECT_EQ(pl.total_threads(), 2);
  ASSERT_NE(pl.hosted_info(f.fn), nullptr);
  EXPECT_TRUE(pl.hosted_info(f.fn)->shared);
  EXPECT_TRUE(pl.hosted_info(merge)->shared);
}

TEST(Planner, DescribeNamesEveryDecision) {
  Fixture f;
  rt::Runtime rtm;
  auto ch = f.src >> f.pump >> f.consumer >> f.active >> f.sink;
  Realization real(rtm, ch.pipeline());
  const std::string d = real.describe();
  EXPECT_NE(d.find("driven by 'pump'"), std::string::npos) << d;
  EXPECT_NE(d.find("consumer: consumer in push mode, direct call"),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("active: active in push mode, coroutine"),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("2 threads"), std::string::npos) << d;
}

TEST(Planner, StatsReportShowsDriversAndBuffers) {
  rt::Runtime rtm;
  CountingSource src("src", 20);
  FreeRunningPump fill("fill");
  Buffer buf("mid-buf", 4);
  FreeRunningPump drain("drain");
  CollectorSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  const std::string r = real.stats_report();
  EXPECT_NE(r.find("fill: 20 items pumped"), std::string::npos) << r;
  EXPECT_NE(r.find("drain: 20 items pumped"), std::string::npos) << r;
  EXPECT_NE(r.find("mid-buf: fill 0/4, 20 in / 20 out"), std::string::npos)
      << r;
}

TEST(Planner, BalancingSwitchSharesUpstream) {
  CountingSource src("src", 100);
  BalancingSwitch sw("sw", 2);
  FreeRunningPump p1("p1");
  FreeRunningPump p2("p2");
  CollectorSink s1("s1");
  CollectorSink s2("s2");
  IdentityFunction fn("fn");
  Pipeline p;
  p.connect(src, 0, fn, 0);
  p.connect(fn, 0, sw, 0);
  p.connect(sw, 0, p1, 0);
  p.connect(sw, 1, p2, 0);
  p.connect(p1, 0, s1, 0);
  p.connect(p2, 0, s2, 0);
  Plan pl = plan(p);
  EXPECT_EQ(pl.sections.size(), 2u);
  ASSERT_NE(pl.hosted_info(fn), nullptr);
  EXPECT_TRUE(pl.hosted_info(fn)->shared);
  EXPECT_EQ(pl.hosted_info(fn)->mode, FlowMode::kPull);
}

}  // namespace
}  // namespace infopipe
