// CPU reservation tests (§3.1): admission-control arithmetic and the pump
// integration — an over-committed pipeline is refused at START, and
// releasing a reservation (stop / end-of-stream) frees the capacity.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

using rt::Reservation;
using rt::ReservationManager;

TEST(ReservationManager, AdmitsUntilCapacity) {
  ReservationManager m(1.0);
  EXPECT_TRUE(m.admit(1, {rt::milliseconds(10), rt::milliseconds(4)}));  // .4
  EXPECT_TRUE(m.admit(2, {rt::milliseconds(10), rt::milliseconds(4)}));  // .8
  EXPECT_FALSE(m.admit(3, {rt::milliseconds(10), rt::milliseconds(4)}))
      << "1.2 total must be refused";
  EXPECT_TRUE(m.admit(3, {rt::milliseconds(10), rt::milliseconds(2)}));  // 1.0
  EXPECT_NEAR(m.utilization(), 1.0, 1e-9);
}

TEST(ReservationManager, ReplaceAndRelease) {
  ReservationManager m(1.0);
  EXPECT_TRUE(m.admit(1, {rt::milliseconds(10), rt::milliseconds(9)}));
  // Same owner may shrink or grow its own reservation in place.
  EXPECT_TRUE(m.admit(1, {rt::milliseconds(10), rt::milliseconds(5)}));
  EXPECT_NEAR(m.utilization(), 0.5, 1e-9);
  EXPECT_TRUE(m.admit(2, {rt::milliseconds(10), rt::milliseconds(5)}));
  m.release(1);
  EXPECT_FALSE(m.holds(1));
  EXPECT_NEAR(m.utilization(), 0.5, 1e-9);
}

TEST(ReservationManager, RejectsNonsense) {
  ReservationManager m(1.0);
  EXPECT_FALSE(m.admit(1, {0, 0}));
  EXPECT_FALSE(m.admit(1, {rt::milliseconds(1), rt::milliseconds(2)}))
      << "budget > period is infeasible";
}

TEST(ReservationPumps, OverCommittedPumpRefusedAtStart) {
  rt::Runtime rtm;  // capacity 1.0
  CountingSource s1("s1", 1000000);
  CountingSource s2("s2", 1000000);
  ClockedPump p1("p1", 100.0);  // 10 ms period
  ClockedPump p2("p2", 100.0);
  p1.set_cost_estimate(rt::milliseconds(7));  // 0.7 utilization
  p2.set_cost_estimate(rt::milliseconds(7));  // 0.7 -> over-committed
  CountingSink k1("k1");
  CountingSink k2("k2");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(p1, 0, k1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p2, 0, k2, 0);
  Realization real(rtm, p);
  std::vector<std::string> denied;
  real.set_event_listener([&](const Event& e) {
    if (e.type == kEventReservationDenied) {
      denied.push_back(*e.get<std::string>());
    }
  });
  real.start();
  rtm.run_until(rt::milliseconds(100));
  // Exactly one pump won admission; the other was refused and moved nothing.
  ASSERT_EQ(denied.size(), 1u);
  EXPECT_EQ(real.running_drivers(), 1);
  EXPECT_EQ(std::min(k1.count(), k2.count()), 0u);
  EXPECT_GT(std::max(k1.count(), k2.count()), 5u);
  real.shutdown();
  rtm.run();
}

TEST(ReservationPumps, StopReleasesCapacityForRestart) {
  rt::Runtime rtm;
  CountingSource s1("s1", 1000000);
  CountingSource s2("s2", 1000000);
  ClockedPump p1("p1", 100.0);
  ClockedPump p2("p2", 100.0);
  p1.set_cost_estimate(rt::milliseconds(7));
  p2.set_cost_estimate(rt::milliseconds(7));
  CountingSink k1("k1");
  CountingSink k2("k2");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(p1, 0, k1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p2, 0, k2, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run_until(rt::milliseconds(100));
  EXPECT_EQ(real.running_drivers(), 1);
  // Stop everything: reservations release. Restart: one pump wins again.
  real.stop();
  rtm.run_until(rt::milliseconds(200));
  EXPECT_NEAR(rtm.reservations().utilization(), 0.0, 1e-9);
  real.start();
  rtm.run_until(rt::milliseconds(300));
  EXPECT_EQ(real.running_drivers(), 1);
  real.shutdown();
  rtm.run();
}

TEST(ReservationPumps, NoEstimateMeansNoReservation) {
  rt::Runtime rtm;
  CountingSource src("src", 50);
  ClockedPump pump("pump", 100.0);  // no cost estimate set
  CountingSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run_until(rt::milliseconds(10));
  EXPECT_EQ(rtm.reservations().count(), 0u);
  rtm.run();
  EXPECT_EQ(sink.count(), 50u);
}

TEST(ReservationPumps, FeasibleMixAdmitted) {
  rt::Runtime rtm;
  CountingSource s1("s1", 1000);
  CountingSource s2("s2", 1000);
  ClockedPump p1("p1", 100.0);
  ClockedPump p2("p2", 50.0);
  p1.set_cost_estimate(rt::milliseconds(4));   // 0.4
  p2.set_cost_estimate(rt::milliseconds(10));  // 0.5
  CountingSink k1("k1");
  CountingSink k2("k2");
  Pipeline p;
  p.connect(s1, 0, p1, 0);
  p.connect(p1, 0, k1, 0);
  p.connect(s2, 0, p2, 0);
  p.connect(p2, 0, k2, 0);
  Realization real(rtm, p);
  real.start();
  rtm.run_until(rt::milliseconds(50));
  EXPECT_EQ(real.running_drivers(), 2);
  EXPECT_NEAR(rtm.reservations().utilization(), 0.9, 1e-9);
  real.shutdown();
  rtm.run();
}

}  // namespace
}  // namespace infopipe
