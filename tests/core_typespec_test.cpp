// Typespec algebra tests (§2.3): intersection, subset, don't-know/don't-care,
// ranges, string sets, and end-to-end propagation through a pipeline.
#include <gtest/gtest.h>

#include "core/infopipes.hpp"

namespace infopipe {
namespace {

TEST(Range, IntersectOverlap) {
  auto r = Range{10, 30}.intersect(Range{20, 40});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 20);
  EXPECT_EQ(r->hi, 30);
}

TEST(Range, IntersectDisjoint) {
  const Range a{0, 5};
  const Range b{6, 9};
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(Range, TouchingEndpointsIntersectToAPoint) {
  const Range a{0, 5};
  const Range b{5, 9};
  auto r = a.intersect(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 5);
  EXPECT_EQ(r->hi, 5);
}

TEST(Typespec, AbsentKeysAlwaysCompose) {
  Typespec a{{props::kItemType, std::string("video")}};
  Typespec b{{props::kFrameRate, Range{10, 60}}};
  auto m = a.intersect(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get<std::string>(props::kItemType), "video");
  EXPECT_EQ(m->get<Range>(props::kFrameRate), (Range{10, 60}));
}

TEST(Typespec, ScalarConflictFails) {
  Typespec a{{props::kItemType, std::string("video")}};
  Typespec b{{props::kItemType, std::string("audio")}};
  EXPECT_FALSE(a.intersect(b).has_value());
  EXPECT_FALSE(a.compatible_with(b));
}

TEST(Typespec, RangeIntersectionNarrows) {
  Typespec a{{props::kFrameRate, Range{10, 60}}};
  Typespec b{{props::kFrameRate, Range{24, 120}}};
  auto m = a.intersect(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get<Range>(props::kFrameRate), (Range{24, 60}));
}

TEST(Typespec, StringSetsIntersect) {
  Typespec a{{props::kFormats, StringSet{"mpeg1", "mpeg2", "raw"}}};
  Typespec b{{props::kFormats, StringSet{"mpeg2", "h261"}}};
  auto m = a.intersect(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get<StringSet>(props::kFormats), (StringSet{"mpeg2"}));
  Typespec c{{props::kFormats, StringSet{"theora"}}};
  EXPECT_FALSE(a.intersect(c).has_value());
}

TEST(Typespec, ScalarInsideRangeReconciles) {
  // A source states 30 fps; a sink supports [10, 60] fps.
  Typespec source{{props::kFrameRate, 30.0}};
  Typespec sink{{props::kFrameRate, Range{10, 60}}};
  auto m = source.intersect(sink);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->get<double>(props::kFrameRate), 30.0);
  Typespec narrow{{props::kFrameRate, Range{40, 60}}};
  EXPECT_FALSE(source.intersect(narrow).has_value());
}

TEST(Typespec, MixedTypesOtherwiseConflict) {
  Typespec a{{"k", std::int64_t{3}}};
  Typespec b{{"k", 3.0}};
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(Typespec, SubsetOf) {
  Typespec tight{{props::kFrameRate, Range{24, 30}},
                 {props::kItemType, std::string("video")}};
  Typespec loose{{props::kFrameRate, Range{10, 60}}};
  EXPECT_TRUE(tight.subset_of(loose));
  EXPECT_FALSE(loose.subset_of(tight));  // missing item.type + wider range
  EXPECT_TRUE(tight.subset_of(Typespec{}));  // everything ⊆ "don't care"
}

TEST(Typespec, SubsetWithStringSets) {
  Typespec small{{props::kFormats, StringSet{"mpeg2"}}};
  Typespec big{{props::kFormats, StringSet{"mpeg1", "mpeg2"}}};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
}

TEST(Typespec, BoolAndIntConflicts) {
  Typespec a{{"flag", true}, {"n", std::int64_t{5}}};
  Typespec b{{"flag", true}, {"n", std::int64_t{5}}};
  EXPECT_TRUE(a.compatible_with(b));
  b.set("flag", false);
  EXPECT_FALSE(a.compatible_with(b));
  b.set("flag", true);
  b.set("n", std::int64_t{6});
  EXPECT_FALSE(a.compatible_with(b));
}

TEST(Typespec, EraseAndEmpty) {
  Typespec t{{"a", std::int64_t{1}}};
  EXPECT_FALSE(t.empty());
  t.erase("a");
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.get<std::int64_t>("a").has_value());
  // Erasing a missing key is a no-op.
  t.erase("ghost");
  EXPECT_TRUE(t.compatible_with(Typespec{}));
}

TEST(Typespec, GetWithWrongAlternativeTypeIsNullopt) {
  Typespec t{{"rate", Range{1, 2}}};
  EXPECT_FALSE(t.get<double>("rate").has_value());
  EXPECT_TRUE(t.get<Range>("rate").has_value());
}

TEST(Typespec, IntersectionIsCommutative) {
  Typespec a{{props::kFrameRate, Range{10, 40}},
             {props::kFormats, StringSet{"x", "y"}},
             {"only-a", std::int64_t{1}}};
  Typespec b{{props::kFrameRate, Range{20, 60}},
             {props::kFormats, StringSet{"y", "z"}},
             {"only-b", 2.5}};
  auto ab = a.intersect(b);
  auto ba = b.intersect(a);
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(*ab, *ba);
}

TEST(Typespec, OverlayUpdatesAndAdds) {
  Typespec base{{"a", std::int64_t{1}}, {"b", std::int64_t{2}}};
  Typespec up{{"b", std::int64_t{20}}, {"c", std::int64_t{3}}};
  Typespec r = base.overlay(up);
  EXPECT_EQ(r.get<std::int64_t>("a"), 1);
  EXPECT_EQ(r.get<std::int64_t>("b"), 20);
  EXPECT_EQ(r.get<std::int64_t>("c"), 3);
}

TEST(Typespec, ToStringIsReadable) {
  Typespec t{{props::kItemType, std::string("video")},
             {props::kFrameRate, Range{10, 60}}};
  const std::string s = t.to_string();
  EXPECT_NE(s.find("item.type=video"), std::string::npos);
  EXPECT_NE(s.find("[10, 60]"), std::string::npos);
}

// --- propagation through components at plan time ------------------------------

/// A source offering mpeg video at 30 fps.
class SpecSource : public CountingSource {
 public:
  SpecSource() : CountingSource("spec-src", 10) {}
  Typespec output_offer(int) const override {
    return Typespec{{props::kItemType, std::string("video")},
                    {props::kFormats, StringSet{"mpeg1", "mpeg2"}},
                    {props::kFrameRate, 30.0}};
  }
};

/// A decoder: requires mpeg, outputs raw video (transforms the spec).
class SpecDecoder : public IdentityFunction {
 public:
  SpecDecoder() : IdentityFunction("spec-dec") {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kFormats, StringSet{"mpeg1", "mpeg2", "mpeg4"}}};
  }
  Typespec transform_downstream(const Typespec& in, int,
                                int) const override {
    Typespec out = in;
    out.set(props::kFormats, StringSet{"raw"});
    return out;
  }
};

/// A display that only takes raw video up to 60 fps.
class SpecDisplay : public CollectorSink {
 public:
  SpecDisplay() : CollectorSink("spec-display") {}
  Typespec input_requirement(int) const override {
    return Typespec{{props::kFormats, StringSet{"raw"}},
                    {props::kFrameRate, Range{1, 60}}};
  }
};

TEST(TypespecPropagation, DecoderAdaptsFormatAlongPipeline) {
  SpecSource src;
  SpecDecoder dec;
  FreeRunningPump pump("pump");
  SpecDisplay display;
  auto ch = src >> dec >> pump >> display;
  Plan p = plan(ch.pipeline());
  // The edge into the display carries raw format and the source's rate.
  const Edge* last = ch.pipeline().edge_into(display, 0);
  ASSERT_NE(last, nullptr);
  const Typespec& spec = p.edge_spec.at(last);
  EXPECT_EQ(spec.get<StringSet>(props::kFormats), (StringSet{"raw"}));
  EXPECT_EQ(spec.get<double>(props::kFrameRate), 30.0);
}

TEST(TypespecPropagation, IncompatibleSinkRejectedAtPlanTime) {
  SpecSource src;
  FreeRunningPump pump("pump");
  SpecDisplay display;  // requires raw; source offers mpeg and no decoder
  auto ch = src >> pump >> display;
  EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
}

TEST(TypespecPropagation, UserPreferenceRestrictsTheFlow) {
  // §2.3: source/sink-supplied ranges "can be restricted by the user to
  // indicate preferences".
  SpecSource src;
  SpecDecoder dec;
  FreeRunningPump pump("pump");
  SpecDisplay display;
  auto ch = src >> dec >> pump >> display;
  // Satisfiable preference: narrows the propagated spec.
  ch.pipeline().restrict(display, 0,
                         Typespec{{props::kFrameRate, Range{24, 48}}});
  Plan p = plan(ch.pipeline());
  const Edge* last = ch.pipeline().edge_into(display, 0);
  EXPECT_EQ(p.edge_spec.at(last).get<double>(props::kFrameRate), 30.0);

  // Tighten the preference to a band the source's fixed 30 fps cannot
  // satisfy (it still intersects the previous preference, so the conflict
  // surfaces during planning, against the actual flow).
  ch.pipeline().restrict(display, 0,
                         Typespec{{props::kFrameRate, Range{40, 48}}});
  EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
}

TEST(TypespecPropagation, ContradictoryPreferencesRejectedAtOnce) {
  SpecDisplay display;
  Pipeline p;
  p.restrict(display, 0, Typespec{{props::kFrameRate, Range{10, 20}}});
  EXPECT_THROW(
      p.restrict(display, 0, Typespec{{props::kFrameRate, Range{30, 40}}}),
      CompositionError);
}

TEST(ControlCapabilities, RequirementWithoutEmitterFailsPlanning) {
  // §2.3: "The capability of components to send or react to these control
  // events is included in the Typespec to ensure that the resulting
  // pipeline is operational."
  class NeedsTicks : public IdentityFunction {
   public:
    NeedsTicks() : IdentityFunction("needs-ticks") {}
    StringSet control_requires() const override { return {"tick"}; }
  };
  class EmitsTicks : public IdentityFunction {
   public:
    EmitsTicks() : IdentityFunction("emits-ticks") {}
    StringSet control_emits() const override { return {"tick"}; }
  };
  CountingSource src("src", 5);
  FreeRunningPump pump("pump");
  NeedsTicks needy;
  CollectorSink sink("sink");
  {
    auto ch = src >> pump >> needy >> sink;
    EXPECT_THROW((void)plan(ch.pipeline()), CompositionError);
  }
  EmitsTicks emitter;
  Pipeline p2;
  p2.connect(src, 0, pump, 0);
  p2.connect(pump, 0, emitter, 0);
  p2.connect(emitter, 0, needy, 0);
  p2.connect(needy, 0, sink, 0);
  EXPECT_NO_THROW((void)plan(p2));
}

TEST(TypespecPropagation, ConnectTimeShallowCheckCatchesDirectMismatch) {
  SpecSource src;
  SpecDisplay display;
  Pipeline p;
  // Direct source->display: offer {mpeg1,mpeg2} vs requirement {raw} clash
  // already at connect time (§4: ">> would throw an exception").
  EXPECT_THROW(p.connect(src, 0, display, 0), CompositionError);
}

}  // namespace
}  // namespace infopipe
