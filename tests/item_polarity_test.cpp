// Unit tests for the lowest-level vocabulary: Item sharing semantics, the
// special markers, and the §2.3 polarity algebra.
#include <gtest/gtest.h>

#include <string>

#include "core/item.hpp"
#include "core/polarity.hpp"
#include "core/event.hpp"

namespace infopipe {
namespace {

TEST(Item, DefaultIsNil) {
  Item x;
  EXPECT_TRUE(x.is_nil());
  EXPECT_FALSE(x.is_data());
  EXPECT_FALSE(static_cast<bool>(x));
  EXPECT_EQ(x.payload<int>(), nullptr);
}

TEST(Item, SpecialMarkers) {
  EXPECT_TRUE(Item::nil().is_nil());
  EXPECT_TRUE(Item::eos().is_eos());
  EXPECT_FALSE(Item::eos().is_data());
  EXPECT_TRUE(Item::token().is_data());
  EXPECT_EQ(Item::token(7).kind, 7);
}

TEST(Item, PayloadIsSharedAcrossCopies) {
  Item a = Item::of<std::string>("frame-data");
  EXPECT_EQ(a.use_count(), 1);
  Item b = a;  // the §2.2 reference-frame situation: two holders
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(a.payload<std::string>(), b.payload<std::string>())
      << "copies must share one payload object";
  {
    Item c = b;
    EXPECT_EQ(a.use_count(), 3);
  }
  EXPECT_EQ(a.use_count(), 2);
}

TEST(Item, MetadataIsPerCopy) {
  Item a = Item::of<int>(5);
  a.seq = 1;
  a.kind = 10;
  Item b = a;
  b.seq = 2;
  b.kind = 20;
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(a.kind, 10);
  EXPECT_EQ(b.seq, 2u);
  EXPECT_EQ(b.kind, 20);
}

TEST(Item, TypedAccessIsSafe) {
  Item x = Item::of<int>(42);
  EXPECT_NE(x.payload<int>(), nullptr);
  EXPECT_EQ(*x.payload<int>(), 42);
  EXPECT_EQ(x.payload<double>(), nullptr) << "wrong type reads as absent";
  EXPECT_EQ(x.as<int>(), 42);
  EXPECT_THROW((void)x.as<std::string>(), std::bad_any_cast);
}

TEST(Item, TokenHasNoPayload) {
  Item t = Item::token(3);
  EXPECT_EQ(t.use_count(), 0);
  EXPECT_EQ(t.payload<int>(), nullptr);
}

// ---------- polarity algebra (§2.3) ---------------------------------------------

TEST(Polarity, OppositeFixedPolaritiesConnect) {
  EXPECT_TRUE(connectable(Polarity::kPositive, Polarity::kNegative));
  EXPECT_TRUE(connectable(Polarity::kNegative, Polarity::kPositive));
}

TEST(Polarity, SameFixedPolarityIsTheCompositionError) {
  EXPECT_FALSE(connectable(Polarity::kPositive, Polarity::kPositive));
  EXPECT_FALSE(connectable(Polarity::kNegative, Polarity::kNegative));
}

TEST(Polarity, PolymorphicConnectsToAnything) {
  for (Polarity p : {Polarity::kPositive, Polarity::kNegative,
                     Polarity::kPolymorphic}) {
    EXPECT_TRUE(connectable(Polarity::kPolymorphic, p));
    EXPECT_TRUE(connectable(p, Polarity::kPolymorphic));
  }
}

TEST(Polarity, EdgeModeFollowsTheDrivingSide) {
  // "A positive out-port will make calls to push" -> the edge runs in push
  // mode; a negative out-port receives pulls -> pull mode.
  EXPECT_EQ(edge_mode(Polarity::kPositive), FlowMode::kPush);
  EXPECT_EQ(edge_mode(Polarity::kNegative), FlowMode::kPull);
}

TEST(Polarity, ModeAndPolarityRoundTrip) {
  for (FlowMode m : {FlowMode::kPush, FlowMode::kPull}) {
    EXPECT_EQ(edge_mode(out_polarity_for(m)), m);
    // The in-port polarity is always the out-port's opposite.
    EXPECT_TRUE(connectable(out_polarity_for(m), in_polarity_for(m)));
    EXPECT_NE(out_polarity_for(m), in_polarity_for(m));
  }
}

TEST(Polarity, ToStringIsCompact) {
  EXPECT_EQ(to_string(Polarity::kPositive), "+");
  EXPECT_EQ(to_string(Polarity::kNegative), "-");
  EXPECT_EQ(to_string(Polarity::kPolymorphic), "a");
  EXPECT_EQ(to_string(FlowMode::kPush), "push");
  EXPECT_EQ(to_string(FlowMode::kPull), "pull");
}

TEST(Events, WellKnownNames) {
  EXPECT_EQ(to_string(Event{kEventStart}), "START");
  EXPECT_EQ(to_string(Event{kEventStop}), "STOP");
  EXPECT_EQ(to_string(Event{kEventEndOfStream}), "EOS");
  EXPECT_EQ(to_string(Event{kEventReservationDenied}), "RESERVATION-DENIED");
  EXPECT_EQ(to_string(Event{kEventUser + 3}),
            "user(" + std::to_string(kEventUser + 3) + ")");
}

TEST(Events, TypedPayloadAccess) {
  Event e{kEventUser, std::string("hello")};
  ASSERT_NE(e.get<std::string>(), nullptr);
  EXPECT_EQ(*e.get<std::string>(), "hello");
  EXPECT_EQ(e.get<int>(), nullptr);
}

}  // namespace
}  // namespace infopipe
