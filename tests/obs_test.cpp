// Observability tests: the metrics registry and flow tracer (ip_obs), the
// runtime's built-in metrics, structured introspection (PlanInfo /
// StatsSnapshot), and the mid-flow snapshot-safety guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/infopipes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace infopipe {
namespace {

// ============================ registry ======================================

TEST(MetricsRegistry, CounterMonotonicity) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.events");
  EXPECT_EQ(c.value(), 0u);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    c.inc(static_cast<std::uint64_t>(i % 3 + 1));
    EXPECT_GT(c.value(), prev) << "counters only ever grow";
    prev = c.value();
  }
  // Re-requesting the same name returns the same counter, not a fresh one.
  EXPECT_EQ(&reg.counter("test.events"), &c);
  EXPECT_EQ(reg.counter("test.events").value(), prev);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x"), std::logic_error);
}

TEST(MetricsRegistry, HistogramBucketsAndStats) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", {10, 100, 1000});
  h.record(5);
  h.record(10);   // boundary: <= 10 lands in the first bucket
  h.record(50);
  h.record(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.sum(), 5065);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(MetricsRegistry, SnapshotSeesCollectorsAndIsTimestamped) {
  obs::MetricsRegistry reg;
  rt::Time fake_now = 42;
  reg.set_time_source([&] { return fake_now; });
  reg.counter("a").inc(7);
  std::uint64_t external = 13;
  const auto id = reg.add_collector([&](obs::MetricsSnapshot& s) {
    s.add_counter("ext.b", external);
  });
  obs::MetricsSnapshot s1 = reg.snapshot();
  EXPECT_EQ(s1.when, 42);
  ASSERT_NE(s1.find("a"), nullptr);
  EXPECT_EQ(s1.find("a")->count, 7u);
  ASSERT_NE(s1.find("ext.b"), nullptr);
  EXPECT_EQ(s1.find("ext.b")->count, 13u);

  reg.remove_collector(id);
  fake_now = 43;
  obs::MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s2.when, 43);
  EXPECT_EQ(s2.find("ext.b"), nullptr) << "removed collector must not run";
}

// ============================= tracer =======================================

TEST(FlowTracer, DisabledRecordIsANoOp) {
  obs::FlowTracer tr(8);
  tr.record(obs::Hop::kPush, "x");
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.total_recorded(), 0u);
}

TEST(FlowTracer, RingWrapsOverwritingOldest) {
  obs::FlowTracer tr(4);
  tr.enable();
  for (int i = 0; i < 10; ++i) {
    tr.record(obs::Hop::kPush, "site", i);
  }
  EXPECT_EQ(tr.total_recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_EQ(tr.size(), 4u);
  const auto events = tr.drain();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the survivors are 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, static_cast<std::int64_t>(6 + i));
  }
  EXPECT_EQ(tr.size(), 0u) << "drain empties the ring";
}

TEST(FlowTracer, SinksSeeEveryEventIncludingOverwritten) {
  obs::FlowTracer tr(2);
  auto sink = std::make_shared<obs::MemorySink>();
  tr.add_sink(sink);
  tr.enable();
  for (int i = 0; i < 5; ++i) tr.record(obs::Hop::kPull, "s", i);
  EXPECT_EQ(sink->events().size(), 5u);
}

// ===================== runtime + pipeline integration =======================

TEST(RuntimeMetrics, BuiltinCountersAppearInSnapshot) {
  rt::Runtime rtm;
  CountingSource src("src", 50);
  FreeRunningPump pump("pump");
  CountingSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();

  const obs::MetricsSnapshot s = rtm.metrics().snapshot();
  ASSERT_NE(s.find("rt.context_switches"), nullptr);
  EXPECT_GT(s.find("rt.context_switches")->count, 0u);
  ASSERT_NE(s.find("rt.dispatches"), nullptr);
  EXPECT_GT(s.find("rt.dispatches")->count, 0u);
  ASSERT_NE(s.find("core.driver_cycles"), nullptr);
  EXPECT_GE(s.find("core.driver_cycles")->count, 50u);
  // The realization's collector publishes per-driver rows.
  ASSERT_NE(s.find("pipe.driver.pump.items_pumped"), nullptr);
  EXPECT_EQ(s.find("pipe.driver.pump.items_pumped")->count, 50u);
}

TEST(RuntimeMetrics, SnapshotDeterministicUnderVirtualClock) {
  // Two identical runs under the virtual clock must produce identical
  // snapshots (same when, same counter values).
  auto run_once = []() {
    rt::Runtime rtm;
    CountingSource src("src", 40);
    ClockedPump pump("pump", 100.0);
    CountingSink sink("sink");
    auto ch = src >> pump >> sink;
    Realization real(rtm, ch.pipeline());
    real.start();
    rtm.run();
    return rtm.metrics().snapshot().to_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RuntimeMetrics, HandoffInstrumentationCountsCoroutineChannel) {
  rt::Runtime rtm;
  constexpr std::uint64_t kItems = 30;
  CountingSource src("src", kItems);
  FreeRunningPump pump("pump");
  LambdaActive noop("noop", [](const auto& pull, const auto& push) {
    for (;;) push(pull());
  });
  CountingSink sink("sink");
  auto ch = src >> pump >> noop >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  const obs::MetricsSnapshot s = rtm.metrics().snapshot();
  ASSERT_NE(s.find("core.handoffs"), nullptr);
  EXPECT_GE(s.find("core.handoffs")->count, kItems)
      << "one hand-off per item crossing the coroutine channel";
  ASSERT_NE(s.find("core.handoff_ns"), nullptr);
  EXPECT_EQ(s.find("core.handoff_ns")->count, s.find("core.handoffs")->count);
}

TEST(RuntimeMetrics, TracerRecordsPipelineHops) {
  rt::Runtime rtm;
  rtm.tracer().enable();
  rtm.tracer().set_capacity(1u << 14);
  CountingSource src("src", 10);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 2, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 1000.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();
  real.shutdown();
  rtm.run();

  bool saw_block = false, saw_unblock = false, saw_control = false,
       saw_timer = false;
  for (const obs::TraceEvent& e : rtm.tracer().drain()) {
    if (e.hop == obs::Hop::kBufferBlock && e.site == "buf") saw_block = true;
    if (e.hop == obs::Hop::kBufferUnblock && e.site == "buf") {
      saw_unblock = true;
    }
    if (e.hop == obs::Hop::kControlDispatch) saw_control = true;
    if (e.hop == obs::Hop::kTimerFire) saw_timer = true;
  }
  EXPECT_TRUE(saw_block) << "fill must have blocked on the tiny buffer";
  EXPECT_TRUE(saw_unblock);
  EXPECT_TRUE(saw_control) << "START/SHUTDOWN dispatches are traced";
  EXPECT_TRUE(saw_timer) << "the clocked drain fires timers";
}

// ===================== structured introspection =============================

TEST(Introspection, PlanInfoMatchesPlanAndRendersDescribe) {
  rt::Runtime rtm;
  CountingSource src("src", 5);
  FreeRunningPump pump("pump");
  LambdaActive act("act", [](const auto& pull, const auto& push) {
    for (;;) push(pull());
  });
  CountingSink sink("sink");
  auto ch = src >> pump >> act >> sink;
  Realization real(rtm, ch.pipeline());

  // Consume the struct directly: no string parsing.
  const PlanInfo info = real.plan_info();
  EXPECT_EQ(info.components, 4u);
  EXPECT_EQ(info.threads, 2u) << "pump thread + one coroutine";
  ASSERT_EQ(info.sections.size(), 1u);
  EXPECT_EQ(info.sections[0].driver, "pump");
  EXPECT_EQ(info.sections[0].thread_count, 2);
  const PlanInfo::Member* m = info.member("act");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->coroutine);
  EXPECT_EQ(m->mode, FlowMode::kPush);

  // describe() is exactly the rendering of plan_info().
  EXPECT_EQ(real.describe(), to_string(info));
  EXPECT_NE(to_string(info).find("section driven by 'pump'"),
            std::string::npos);
  EXPECT_NE(to_string(info).find("act: active in push mode, coroutine"),
            std::string::npos);

  // JSON form parses out the same facts (spot-check).
  const std::string j = to_json(info);
  EXPECT_NE(j.find("\"driver\":\"pump\""), std::string::npos);
  EXPECT_NE(j.find("\"coroutine\":true"), std::string::npos);
}

TEST(Introspection, StatsReportIsRenderedFromSnapshot) {
  rt::Runtime rtm;
  CountingSource src("src", 20);
  FreeRunningPump fill("fill");
  Buffer buf("mid-buf", 4, FullPolicy::kBlock, EmptyPolicy::kBlock);
  FreeRunningPump drain("drain");
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());
  real.start();
  rtm.run();

  const StatsSnapshot snap = real.stats_snapshot();
  // Regression: the text report must be exactly the snapshot, rendered.
  EXPECT_EQ(real.stats_report(), to_string(snap));

  const DriverStats* fd = snap.driver("fill");
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->items_pumped, 20u);
  const BufferStats* bs = snap.buffer("mid-buf");
  ASSERT_NE(bs, nullptr);
  EXPECT_EQ(bs->puts, 20u);
  EXPECT_EQ(bs->takes, 20u);
  EXPECT_EQ(bs->fill, 0u);
  EXPECT_EQ(bs->fill, bs->puts - bs->takes);

  // And the registry snapshot carries the same values via the collector.
  const obs::MetricsSnapshot ms = rtm.metrics().snapshot();
  ASSERT_NE(ms.find("pipe.buffer.mid-buf.puts"), nullptr);
  EXPECT_EQ(ms.find("pipe.buffer.mid-buf.puts")->count, bs->puts);
  ASSERT_NE(ms.find("pipe.driver.fill.items_pumped"), nullptr);
  EXPECT_EQ(ms.find("pipe.driver.fill.items_pumped")->count,
            fd->items_pumped);
}

TEST(Introspection, SnapshotSafeMidFlowFromEventListener) {
  // Take snapshots from a control-event listener while threads are blocked
  // mid-flow. Every snapshot must be internally consistent: for a kBlock
  // buffer, fill == puts - takes at every dispatch point (no torn reads).
  rt::Runtime rtm;
  CountingSource src("src", 500);
  FreeRunningPump fill("fill");
  Buffer buf("buf", 3, FullPolicy::kBlock, EmptyPolicy::kBlock);
  ClockedPump drain("drain", 1000.0);
  CountingSink sink("sink");
  auto ch = src >> fill >> buf >> drain >> sink;
  Realization real(rtm, ch.pipeline());

  int checked = 0;
  real.set_event_listener([&](const Event&) {
    const StatsSnapshot s = real.stats_snapshot();
    const BufferStats* b = s.buffer("buf");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->fill, b->puts - b->takes)
        << "snapshot taken mid-flow must not tear";
    EXPECT_LE(b->fill, b->capacity + 1)  // +1: transient stop-overflow slot
        << "fill within bounds";
    ++checked;
  });

  real.start();
  // Interleave control events with a running, frequently-blocking flow.
  for (int step = 1; step <= 20; ++step) {
    rtm.run_until(step * rt::milliseconds(17));
    real.post_event(Event{kEventUser + 1});
  }
  rtm.run();
  EXPECT_GE(checked, 20);

  // Mid-flow registry snapshots are pure reads too; take one after the run
  // and cross-check against the structured snapshot.
  const StatsSnapshot fin = real.stats_snapshot();
  EXPECT_EQ(fin.buffer("buf")->puts, 500u);
  EXPECT_EQ(fin.buffer("buf")->takes, 500u);
}

TEST(Introspection, SharedPipelineOverloadKeepsGraphAlive) {
  rt::Runtime rtm;
  CountingSource src("src", 15);
  FreeRunningPump pump("pump");
  CountingSink sink("sink");
  // The Chain temporary dies at the end of this full-expression; the
  // realization co-owns the Pipeline, so nothing dangles.
  Realization real(rtm, (src >> pump >> sink).share());
  real.start();
  rtm.run();
  EXPECT_EQ(sink.count(), 15u);
  EXPECT_EQ(real.plan_info().sections.size(), 1u);
}

TEST(Introspection, EventListenerStillObservesBroadcasts) {
  // The canonical member API (start/stop/post_event) feeds the listener;
  // control(START) is the same call.
  rt::Runtime rtm;
  CountingSource src("src", 5);
  FreeRunningPump pump("pump");
  CountingSink sink("sink");
  auto ch = src >> pump >> sink;
  Realization real(rtm, ch.pipeline());
  std::vector<int> seen;
  real.set_event_listener([&](const Event& e) { seen.push_back(e.type); });
  real.start();
  rtm.run();
  real.shutdown();
  rtm.run();
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen.front(), kEventStart);
  EXPECT_EQ(seen.back(), kEventShutdown);
}

// ======================= JSON-lines sink ====================================

TEST(JsonLinesSink, WritesOneObjectPerEvent) {
  const std::string path = "obs_test_trace.jsonl";
  {
    obs::FlowTracer tr(16);
    tr.add_sink(std::make_shared<obs::JsonLinesSink>(path));
    tr.enable();
    tr.record(obs::Hop::kPush, "alpha", 1, 2);
    tr.record(obs::Hop::kDrop, "beta", 3);
    (void)tr.drain();  // flushes sinks
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  int lines = 0;
  bool saw_push = false, saw_drop = false;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++lines;
    const std::string l = line;
    if (l.find("\"hop\": \"push\"") != std::string::npos &&
        l.find("\"site\": \"alpha\"") != std::string::npos) {
      saw_push = true;
    }
    if (l.find("\"hop\": \"drop\"") != std::string::npos) saw_drop = true;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(lines, 2);
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace infopipe
